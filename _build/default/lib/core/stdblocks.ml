let float_in name = (name, Some Dtype.Tfloat)

let expr_block ~name ~inputs ?out_type expr =
  Dfd.block_of_expr ~name ~inputs ?out_type expr

(* Single-state STD skeleton: fires whenever a message is present on
   [trigger]; computes [out] and updates the variables. *)
let machine_block ~name ~inputs ~out_type ~vars ~trigger ~out_expr ~updates =
  let std : Model.std =
    { std_name = name ^ "_machine";
      std_states = [ "run" ];
      std_initial = "run";
      std_vars = vars;
      std_transitions =
        [ { st_src = "run";
            st_dst = "run";
            st_guard = Expr.Is_present trigger;
            st_outputs = [ ("out", out_expr) ];
            st_updates = updates;
            st_priority = 0 } ] }
  in
  let in_ports = List.map (fun (n, ty) -> Model.port ?ty Model.In n) inputs in
  Model.component name
    ~ports:(in_ports @ [ Model.port ~ty:out_type Model.Out "out" ])
    ~behavior:(Model.B_std std)

let delay ~name ~init =
  expr_block ~name
    ~inputs:[ ("in", None) ]
    (Expr.pre init (Expr.var "in"))

let gain ~name k =
  expr_block ~name
    ~inputs:[ float_in "in" ]
    ~out_type:Dtype.Tfloat
    Expr.(float k * var "in")

let offset ~name k =
  expr_block ~name
    ~inputs:[ float_in "in" ]
    ~out_type:Dtype.Tfloat
    Expr.(var "in" + float k)

let limiter ~name ~lo ~hi =
  expr_block ~name
    ~inputs:[ float_in "in" ]
    ~out_type:Dtype.Tfloat
    (Expr.Call ("limit", [ Expr.var "in"; Expr.float lo; Expr.float hi ]))

let rate_limiter ~name ~max_step =
  let stepped =
    Expr.(
      var "prev"
      + Call ("limit", [ var "in" - var "prev"; float (-.max_step); float max_step ]))
  in
  machine_block ~name
    ~inputs:[ float_in "in" ]
    ~out_type:Dtype.Tfloat
    ~vars:[ ("prev", Value.Float 0.) ]
    ~trigger:"in" ~out_expr:stepped
    ~updates:[ ("prev", stepped) ]

let integrator ~name ?(init = 0.) ?(gain = 1.) () =
  let acc = Expr.(var "acc" + (float gain * var "in")) in
  machine_block ~name
    ~inputs:[ float_in "in" ]
    ~out_type:Dtype.Tfloat
    ~vars:[ ("acc", Value.Float init) ]
    ~trigger:"in" ~out_expr:acc
    ~updates:[ ("acc", acc) ]

let derivative ~name =
  machine_block ~name
    ~inputs:[ float_in "in" ]
    ~out_type:Dtype.Tfloat
    ~vars:[ ("prev", Value.Float 0.) ]
    ~trigger:"in"
    ~out_expr:Expr.(var "in" - var "prev")
    ~updates:[ ("prev", Expr.var "in") ]

let pi_controller ~name ~kp ~ki =
  let err = Expr.(var "setpoint" - var "measure") in
  let integral = Expr.(var "integral" + err) in
  machine_block ~name
    ~inputs:[ float_in "setpoint"; float_in "measure" ]
    ~out_type:Dtype.Tfloat
    ~vars:[ ("integral", Value.Float 0.) ]
    ~trigger:"measure"
    ~out_expr:Expr.((float kp * err) + (float ki * integral))
    ~updates:[ ("integral", integral) ]

let hysteresis ~name ~low ~high =
  let std : Model.std =
    { std_name = name ^ "_machine";
      std_states = [ "Low"; "High" ];
      std_initial = "Low";
      std_vars = [];
      std_transitions =
        [ { st_src = "Low"; st_dst = "High";
            st_guard = Expr.(var "in" > float high);
            st_outputs = [ ("out", Expr.bool true) ];
            st_updates = []; st_priority = 0 };
          { st_src = "Low"; st_dst = "Low";
            st_guard = Expr.Is_present "in";
            st_outputs = [ ("out", Expr.bool false) ];
            st_updates = []; st_priority = 1 };
          { st_src = "High"; st_dst = "Low";
            st_guard = Expr.(var "in" < float low);
            st_outputs = [ ("out", Expr.bool false) ];
            st_updates = []; st_priority = 0 };
          { st_src = "High"; st_dst = "High";
            st_guard = Expr.Is_present "in";
            st_outputs = [ ("out", Expr.bool true) ];
            st_updates = []; st_priority = 1 } ] }
  in
  Model.component name
    ~ports:
      [ Model.port ~ty:Dtype.Tfloat Model.In "in";
        Model.port ~ty:Dtype.Tbool Model.Out "out" ]
    ~behavior:(Model.B_std std)

let debounce ~name ~ticks =
  (* Counts consecutive activations on which the input differs from the
     stable output; switches after [ticks] of them. *)
  let differs = Expr.(Binop (Ne, var "in", var "stable")) in
  let bumped = Expr.(var "count" + int 1) in
  let switch = Expr.(differs && (bumped >= int ticks)) in
  let std : Model.std =
    { std_name = name ^ "_machine";
      std_states = [ "run" ];
      std_initial = "run";
      std_vars = [ ("stable", Value.Bool false); ("count", Value.Int 0) ];
      std_transitions =
        [ { st_src = "run"; st_dst = "run";
            st_guard = Expr.Is_present "in";
            st_outputs =
              [ ("out", Expr.if_ switch (Expr.var "in") (Expr.var "stable")) ];
            st_updates =
              [ ("stable", Expr.if_ switch (Expr.var "in") (Expr.var "stable"));
                ("count", Expr.if_ switch (Expr.int 0)
                            (Expr.if_ differs bumped (Expr.int 0))) ];
            st_priority = 0 } ] }
  in
  Model.component name
    ~ports:
      [ Model.port ~ty:Dtype.Tbool Model.In "in";
        Model.port ~ty:Dtype.Tbool Model.Out "out" ]
    ~behavior:(Model.B_std std)

let sample_hold ~name ~clock ~init =
  expr_block ~name
    ~inputs:[ ("in", None) ]
    (Expr.current init (Expr.when_ (Expr.var "in") clock))
