(** Rule-based analysis on the Functional Analysis Architecture (paper
    Sec. 3.1).

    "Based on the functional structure and dependencies, rules identify
    possible conflicts (e.g. two vehicle functions access the same
    actuator) and suggest suitable countermeasures to resolve them (e.g.
    introduce a coordinating functionality)."

    Sensors and actuators are modeled as [port_resource] tags on the
    ports of FAA-level vehicle functions: an [Out] port tagged with
    resource [r] {e drives} actuator [r]; an [In] port tagged [r]
    {e reads} sensor [r]. *)

type finding = {
  rule : string;                  (** rule identifier *)
  severity : [ `Conflict | `Warning | `Info ];
  subject : string list;          (** involved component names *)
  message : string;
  countermeasure : string option; (** suggested resolution, if any *)
}

val pp_finding : Format.formatter -> finding -> unit

type rule = Model.model -> finding list

val actuator_conflict : rule
(** Two distinct vehicle functions drive the same actuator resource.
    Countermeasure: introduce a coordinating functionality. *)

val shared_sensor : rule
(** [`Info]: several functions read the same sensor (fan-out is fine but
    worth knowing for the communication matrix). *)

val unspecified_behavior : rule
(** [`Warning] on FAA (prototypical behavior missing, simulation will be
    silent); [`Conflict] on FDA, which must be behaviorally complete. *)

val dangling_channels : rule
(** Channels with unresolvable endpoints anywhere in the hierarchy. *)

val unconnected_functions : rule
(** [`Warning]: top-level functions with no connected ports at all —
    likely an integration oversight. *)

val prototype_actuator : rule
(** [`Warning]: an actuator resource is driven by a component whose
    behavior is still unspecified — fine for early FAA integration, but
    the conflict analysis cannot judge the command policy yet. *)

val non_harmonic_channel : rule
(** [`Warning]: a top-level channel connects ports whose periodic clocks
    are not harmonic (neither divides the other): the refinement to the
    LA level will need an explicit rate adapter. *)

val undelayed_faa_feedback : rule
(** [`Warning]: a DFD used directly at FAA level with a feedback loop
    (FAA integration should compose functions with SSDs, whose delays
    make integration order-insensitive). *)

val default_rules : (string * rule) list
(** All rules above, keyed by their identifier. *)

val run : ?rules:(string * rule) list -> Model.model -> finding list
(** Apply the rules (default {!default_rules}); findings are ordered by
    severity ([`Conflict] first). *)

val summary : finding list -> string
(** One-line count summary, e.g. ["2 conflicts, 1 warning, 3 infos"]. *)
