(** Text rendering of AutoMoDe diagrams.

    The tool prototype's graphical notations (SSD, DFD, MTD, STD) are
    regenerated here as structured ASCII — component boxes with their
    port lists, channel tables, and mode/state transition tables.  Used
    by the figure-regeneration benches and the CLI [render] command. *)

val component : Format.formatter -> Model.component -> unit
(** Render a component and, indented, its entire hierarchy. *)

val network :
  kind:string -> Format.formatter -> Model.network -> unit
(** Render one network: a box per sub-component and the channel table.
    [kind] labels the diagram ("SSD", "DFD", "CCD"). *)

val mtd : Format.formatter -> Model.mtd -> unit
(** Mode list (initial marked) and the transition table. *)

val std : Format.formatter -> Model.std -> unit
(** State/variable lists and the transition table. *)

val component_to_string : Model.component -> string
