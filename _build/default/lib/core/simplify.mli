(** Model optimization: expression simplification (paper Sec. 4 names
    "optimizing system models" as one purpose of tool-supported
    transformations).

    The white-box reengineering's symbolic execution produces large
    expressions full of constant subterms and degenerate conditionals;
    this module normalizes them.  All rewrites are semantics-preserving
    for well-typed expressions under the operational model, including
    message absence: a rewrite never changes an expression's presence
    behavior (e.g. [x * 0] is {e not} rewritten to [0], because the
    product is absent whenever [x] is, while the constant is always
    present).  Constant folding additionally never masks run-time errors
    (a division by zero is kept in place); the neutral-element rules, as
    in any optimizer, assume the operands are well-typed.  Verified by a
    qcheck property over random expressions in the test-suite. *)


val expr : Expr.t -> Expr.t
(** Bottom-up simplification to a fixpoint:
    - constant folding of operators and library calls over constants
      (faithful to run-time evaluation, including integer division);
    - [if true/false] and [if c then e else e] collapse (the latter only
      when [c] cannot be absent, i.e. [c] is constant);
    - neutral elements on the always-present side: [e + 0], [e - 0],
      [e * 1], [e / 1], [b && true], [b || false] where the constant is
      the {e other} operand;
    - double negation, [not] of comparisons;
    - nested [When] on the same clock;
    - idempotent [min]/[max] with equal constant operands. *)

val size : Expr.t -> int
(** Node count (for reporting optimization effect). *)

val behavior : Model.behavior -> Model.behavior
(** Apply {!expr} to every expression of a behavior, recursively through
    networks, MTD modes/guards, and STD guards/actions. *)

val component : Model.component -> Model.component
val model : Model.model -> Model.model
