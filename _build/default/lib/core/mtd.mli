(** Operations on Mode Transition Diagrams (paper Secs. 3.2, 5).

    An MTD partitions a component's behavior into explicit operational
    modes; within a mode, behavior is given by a subordinate DFD or SSD
    (comparable to the composition of FSMs and concurrency models in
    *charts).  Mode transitions are triggered by combinations of messages
    arriving at the MTD's component.

    Step semantics (design decision 1 in DESIGN.md): {e strong
    preemption} — transition guards are evaluated on the current tick's
    inputs first; the behavior of the {e target} mode then processes the
    same inputs.  Mode-local state is retained when a mode is re-entered
    (history semantics).

    The {!product} construction builds the global mode transition system
    of two orthogonal MTDs "correct by construction" (paper Sec. 5). *)

val check : Model.mtd -> (unit, string list) result
(** Structural well-formedness: initial mode declared, distinct mode
    names, transition endpoints declared, distinct priorities per source
    mode, guards free of [Pre]/[Current]. *)

val deterministic : Model.mtd -> bool
(** Distinct priorities among the transitions leaving each mode. *)

val reachable_modes : Model.mtd -> string list
(** Modes reachable from the initial mode (guards ignored). *)

val enabled_transition :
  ?schedule:Clock.schedule -> tick:int -> env:Expr.env -> Model.mtd ->
  current:string -> Model.mtd_transition option
(** The highest-priority transition out of [current] whose guard holds on
    this tick's inputs. *)

val find_mode : Model.mtd -> string -> Model.mode option

val mode_enum : Model.mtd -> Dtype.t
(** The enumeration type of the MTD's mode names, named
    ["<mtd name>_mode"].  Used by the refactoring that replaces an MTD
    with DFDs carrying explicit mode ports (paper Sec. 4). *)

val product : Model.mtd -> Model.mtd -> Model.mtd
(** Synchronous product: modes are pairs [m1_m2]; both sides react to the
    same messages.  Joint transitions fire when both guards hold;
    single-side transitions fire when only one guard holds.  Priorities
    are combined lexicographically.  Mode behaviors of the product are
    [B_unspecified] — the product captures the global mode transition
    structure, not the data flow. *)
