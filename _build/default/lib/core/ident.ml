type t = string list

exception Invalid of string

let segment_ok seg =
  let char_ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-'
  in
  String.length seg > 0 && String.for_all char_ok seg

let check_segment seg =
  if not (segment_ok seg) then raise (Invalid ("bad identifier segment: " ^ seg))

let v seg = check_segment seg; [ seg ]

let of_path segs =
  match segs with
  | [] -> raise (Invalid "empty identifier path")
  | _ :: _ -> List.iter check_segment segs; segs

let of_string s = of_path (String.split_on_char '.' s)
let to_string id = String.concat "." id
let segments id = id
let child id seg = check_segment seg; id @ [ seg ]
let append a b = a @ b

let basename id =
  match List.rev id with
  | [] -> assert false
  | seg :: _ -> seg

let parent id =
  match List.rev id with
  | [] -> assert false
  | [ _ ] -> None
  | _ :: rest -> Some (List.rev rest)

let depth = List.length

let rec is_prefix a b =
  match a, b with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: a', y :: b' -> String.equal x y && is_prefix a' b'

let equal = List.equal String.equal
let compare = List.compare String.compare
let pp ppf id = Format.pp_print_string ppf (to_string id)
