(** Product-family variant management.

    The paper's introduction names the "large number of variants in
    product families" as one of the complexity drivers the methodology
    must address.  This module provides feature-conditional models at
    the FAA/FDA level: top-level components carry {e presence
    conditions} over a feature set; configuring a variant model against
    a feature assignment prunes the disabled functions and every channel
    that touches them.

    Variability is component-granular at the root network, matching the
    FAA use case (optional vehicle functions such as ParkAssist or
    RainSensor); inner structure is not conditional. *)

type feature = string

type condition =
  | Ftrue
  | Fvar of feature
  | Fnot of condition
  | Fand of condition * condition
  | For of condition * condition

val pp_condition : Format.formatter -> condition -> unit

val eval : (feature * bool) list -> condition -> bool
(** Unassigned features count as disabled. *)

val features_of : condition -> feature list
(** Features mentioned, without duplicates. *)

type t = {
  base : Model.model;
  presence : (string * condition) list;
      (** root-network component name -> presence condition; unmentioned
          components are unconditionally present *)
}

val make : ?presence:(string * condition) list -> Model.model -> t

val features : t -> feature list
(** All features mentioned by any presence condition. *)

val check : t -> string list
(** Problems: presence conditions for unknown components; a condition on
    a component that some other unconditional component depends on
    through a channel (a disabled provider would silence a mandatory
    function — flagged so the modeler adds a condition or a default). *)

exception Not_variant_model of string

val configure : t -> assignment:(feature * bool) list -> Model.model
(** The variant for one feature assignment: disabled components and
    their channels are removed from the root network.
    @raise Not_variant_model when the root has no network behavior. *)

val all_assignments : feature list -> (feature * bool) list list
(** All 2^n assignments (use only for small feature sets). *)

val configurations : t -> (string * Model.model) list
(** Every variant of the family, keyed by a readable assignment label
    like ["+park_assist-rain_sensor"]. *)
