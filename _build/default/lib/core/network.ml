type issue = {
  issue_severity : [ `Error | `Warning ];
  issue_msg : string;
}

let pp_issue ppf i =
  let tag = match i.issue_severity with `Error -> "error" | `Warning -> "warning" in
  Format.fprintf ppf "%s: %s" tag i.issue_msg

let errors issues =
  List.filter_map
    (fun i ->
      match i.issue_severity with
      | `Error -> Some i.issue_msg
      | `Warning -> None)
    issues

let resolve_port ~enclosing (net : Model.network) (ep : Model.endpoint) =
  match ep.ep_comp with
  | None -> Model.find_port enclosing ep.ep_port
  | Some comp_name ->
    (match Model.find_component net comp_name with
     | None -> None
     | Some comp -> Model.find_port comp ep.ep_port)

let driver_of (net : Model.network) (ep : Model.endpoint) =
  List.find_opt
    (fun (ch : Model.channel) ->
      ch.ch_dst.ep_comp = ep.ep_comp
      && String.equal ch.ch_dst.ep_port ep.ep_port)
    net.net_channels

let ep_to_string (ep : Model.endpoint) =
  match ep.ep_comp with
  | None -> "boundary." ^ ep.ep_port
  | Some c -> c ^ "." ^ ep.ep_port

let check ?(require_static_types = false) ~enclosing (net : Model.network) =
  let issues = ref [] in
  let add severity fmt =
    Format.kasprintf
      (fun msg -> issues := { issue_severity = severity; issue_msg = msg } :: !issues)
      fmt
  in
  (match Model.validate_unique_names net with
   | Ok () -> ()
   | Error msg -> add `Error "%s" msg);
  if require_static_types then
    List.iter
      (fun (c : Model.component) ->
        List.iter
          (fun (p : Model.port) ->
            match p.port_type with
            | Some _ -> ()
            | None ->
              add `Error "untyped port %s.%s in statically typed network %s"
                c.comp_name p.port_name net.net_name)
          c.comp_ports)
      net.net_components;
  (* Endpoint resolution, direction rules, typing, clocking. *)
  let check_channel (ch : Model.channel) =
    let src = resolve_port ~enclosing net ch.ch_src in
    let dst = resolve_port ~enclosing net ch.ch_dst in
    (match src with
     | None ->
       add `Error "channel %s: unresolved source %s" ch.ch_name
         (ep_to_string ch.ch_src)
     | Some p ->
       let expected : Model.port_dir =
         match ch.ch_src.ep_comp with None -> In | Some _ -> Out
       in
       if p.port_dir <> expected then
         add `Error "channel %s: source %s has wrong direction" ch.ch_name
           (ep_to_string ch.ch_src));
    (match dst with
     | None ->
       add `Error "channel %s: unresolved destination %s" ch.ch_name
         (ep_to_string ch.ch_dst)
     | Some p ->
       let expected : Model.port_dir =
         match ch.ch_dst.ep_comp with None -> Out | Some _ -> In
       in
       if p.port_dir <> expected then
         add `Error "channel %s: destination %s has wrong direction" ch.ch_name
           (ep_to_string ch.ch_dst));
    (match src, dst with
     | Some sp, Some dp ->
       (match sp.port_type, dp.port_type with
        | Some ts, Some td ->
          if not (Dtype.compatible ~src:ts ~dst:td) then
            add `Error "channel %s: type %s not compatible with %s" ch.ch_name
              (Dtype.to_string ts) (Dtype.to_string td)
        | None, _ | _, None -> ());
       if not (Clock.equal sp.port_clock dp.port_clock) then
         add `Warning "channel %s: clock %s feeds clock %s" ch.ch_name
           (Clock.to_string sp.port_clock) (Clock.to_string dp.port_clock)
     | (None | Some _), _ -> ())
  in
  List.iter check_channel net.net_channels;
  (* Single driver per destination. *)
  let dst_keys =
    List.map (fun (ch : Model.channel) -> ep_to_string ch.ch_dst) net.net_channels
  in
  let sorted = List.sort String.compare dst_keys in
  let rec dups = function
    | a :: (b :: _ as rest) ->
      if String.equal a b then a :: dups rest else dups rest
    | [ _ ] | [] -> []
  in
  List.iter
    (fun key -> add `Error "destination %s driven by several channels" key)
    (List.sort_uniq String.compare (dups sorted));
  (* Unconnected sub-component inputs. *)
  List.iter
    (fun (c : Model.component) ->
      List.iter
        (fun (p : Model.port) ->
          if p.port_dir = Model.In then
            let ep : Model.endpoint =
              { ep_comp = Some c.comp_name; ep_port = p.port_name }
            in
            if driver_of net ep = None then
              add `Warning "input %s.%s is unconnected" c.comp_name p.port_name)
        c.comp_ports)
    net.net_components;
  List.rev !issues

(* ------------------------------------------------------------------ *)
(* Flattening                                                         *)
(* ------------------------------------------------------------------ *)

let is_inlinable (c : Model.component) =
  match c.comp_behavior with
  | Model.B_dfd _ | Model.B_ssd _ -> true
  | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified ->
    false

(* Inline one component [victim] defined by [inner] into [net].  SSD-defined
   victims get their sibling-to-sibling channels marked delayed so that the
   implicit SSD delay survives in the flat representation. *)
let inline_one ~prefix_sep (net : Model.network) (victim : Model.component)
    (inner : Model.network) ~ssd_delays : Model.network =
  let open Model in
  let pfx name = victim.comp_name ^ prefix_sep ^ name in
  let rename_ep (ep : endpoint) =
    match ep.ep_comp with
    | None -> ep (* still refers to the victim boundary; spliced below *)
    | Some c -> { ep with ep_comp = Some (pfx c) }
  in
  let inner_components =
    List.map (fun c -> { c with comp_name = pfx c.comp_name }) inner.net_components
  in
  (* Channels of the parent net that touch the victim. *)
  let touches (ep : endpoint) = ep.ep_comp = Some victim.comp_name in
  let parent_in, parent_out, parent_rest =
    List.fold_left
      (fun (pin, pout, rest) (ch : channel) ->
        if touches ch.ch_dst then (ch :: pin, pout, rest)
        else if touches ch.ch_src then (pin, ch :: pout, rest)
        else (pin, pout, ch :: rest))
      ([], [], []) net.net_channels
  in
  let parent_in = List.rev parent_in
  and parent_out = List.rev parent_out
  and parent_rest = List.rev parent_rest in
  (* For an inner endpoint that refers to the victim's own boundary port q:
     - as a source: the parent channel driving victim.q supplies the value;
     - as a destination: every parent channel reading victim.q consumes it. *)
  let feeding q =
    List.find_opt (fun (ch : channel) -> String.equal ch.ch_dst.ep_port q) parent_in
  in
  let readers q =
    List.filter (fun (ch : channel) -> String.equal ch.ch_src.ep_port q) parent_out
  in
  let fresh_channels =
    List.concat_map
      (fun (ich : channel) ->
        let delayed =
          ich.ch_delayed
          || (ssd_delays && ich.ch_src.ep_comp <> None && ich.ch_dst.ep_comp <> None)
        in
        let base =
          { ich with
            ch_name = pfx ich.ch_name;
            ch_src = rename_ep ich.ch_src;
            ch_dst = rename_ep ich.ch_dst;
            ch_delayed = delayed }
        in
        match ich.ch_src.ep_comp, ich.ch_dst.ep_comp with
        | Some _, Some _ -> [ base ]
        | None, Some _ ->
          (* boundary input forwarded inside: splice with the parent feeder *)
          (match feeding ich.ch_src.ep_port with
           | None -> [] (* undriven input: channel disappears *)
           | Some pch ->
             [ { base with
                 ch_src = pch.ch_src;
                 ch_delayed = base.ch_delayed || pch.ch_delayed;
                 ch_init =
                   (match base.ch_init with
                    | Some _ as i -> i
                    | None -> pch.ch_init) } ])
        | Some _, None ->
          (* inner result forwarded out: splice with every parent reader *)
          List.mapi
            (fun i pch ->
              { base with
                ch_name = base.ch_name ^ "_" ^ string_of_int i;
                ch_dst = pch.ch_dst;
                ch_delayed = base.ch_delayed || pch.ch_delayed;
                ch_init =
                  (match pch.ch_init with
                   | Some _ as init -> init
                   | None -> base.ch_init) })
            (readers ich.ch_dst.ep_port)
        | None, None ->
          (* pure forwarding through the victim *)
          (match feeding ich.ch_src.ep_port with
           | None -> []
           | Some pin ->
             List.mapi
               (fun i pout ->
                 { base with
                   ch_name = base.ch_name ^ "_" ^ string_of_int i;
                   ch_src = pin.ch_src;
                   ch_dst = pout.ch_dst;
                   ch_delayed = base.ch_delayed || pin.ch_delayed || pout.ch_delayed })
               (readers ich.ch_dst.ep_port)))
      inner.net_channels
  in
  let components =
    List.filter (fun c -> not (String.equal c.comp_name victim.comp_name))
      net.net_components
    @ inner_components
  in
  { net with
    net_components = components;
    net_channels = parent_rest @ fresh_channels }

let rec flatten ~prefix_sep (net : Model.network) : Model.network =
  match List.find_opt is_inlinable net.net_components with
  | None -> net
  | Some victim ->
    let inner, ssd_delays =
      match victim.comp_behavior with
      | Model.B_dfd inner -> (inner, false)
      | Model.B_ssd inner -> (inner, true)
      | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified ->
        assert false
    in
    flatten ~prefix_sep (inline_one ~prefix_sep net victim inner ~ssd_delays)
