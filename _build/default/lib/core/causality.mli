(** Causality analysis of DFDs (paper Sec. 3.2).

    The default semantics of DFD communication is instantaneous; the tool
    accompanies it with "a causality check for detecting instantaneous
    loops".  We adopt the block-level, conservative discipline (DESIGN.md
    decision 4): every undelayed channel between two sub-components is an
    instantaneous dependency, and feedback must be broken by an explicit
    delay — a [ch_delayed] channel, or SSD composition (whose channels
    are implicitly delayed).  [Pre] inside a block provides local state
    but does not license a feedback loop around the block.

    The same dependency graph yields the deterministic evaluation order
    used by the simulator. *)

type loop = string list
(** An instantaneous loop, as the cycle's component names. *)

val instantaneous_edges : Model.network -> (string * string) list
(** Directed edges [src_comp -> dst_comp] induced by undelayed channels
    between sub-components (boundary-touching channels induce none). *)

val check : Model.network -> (unit, loop list) result
(** [Ok ()] when the instantaneous dependency graph is acyclic; otherwise
    every strongly connected component with a cycle, smallest first. *)

val evaluation_order : Model.network -> (string list, loop list) result
(** A topological order of the sub-components along instantaneous
    dependencies; [Error] on instantaneous loops.  Components not
    constrained relative to each other stay in declaration order. *)

val check_recursive : Model.component -> (string list * loop) list
(** Run {!check} on every DFD network in the hierarchy (including those
    inside MTD modes).  Returns the offending loops with the path of the
    enclosing component.  Empty = causally correct. *)
