exception Unknown_function of string
exception Arity_error of string

let table : (string * int) list =
  [ ("add", 2); ("sub", 2); ("mul", 2); ("div", 2); ("min", 2); ("max", 2);
    ("abs", 1); ("sign", 1); ("sqrt", 1); ("round", 1); ("floor", 1);
    ("ceil", 1); ("limit", 3); ("deadband", 2);
    ("select", 3); ("avg2", 2); ("interp1", 5) ]

let names = List.map fst table
let arity name = List.assoc_opt name table

let check_arity name args =
  match arity name with
  | None -> raise (Unknown_function name)
  | Some n ->
    if List.length args <> n then
      raise
        (Arity_error
           (Printf.sprintf "%s expects %d arguments, got %d" name n
              (List.length args)))

let sign v =
  let f = Value.to_float v in
  if f > 0. then Value.Int 1 else if f < 0. then Value.Int (-1) else Value.Int 0

let limit x lo hi = Value.max_v lo (Value.min_v x hi)

let deadband x w =
  let xf = Value.to_float x and wf = Value.to_float w in
  if Float.abs xf <= wf then
    match x with
    | Value.Int _ -> Value.Int 0
    | Value.Float _ | Value.Bool _ | Value.Enum _ | Value.Tuple _ ->
      Value.Float 0.
  else x

let interp1 x x0 y0 x1 y1 =
  let x = Value.to_float x and x0 = Value.to_float x0 in
  let y0 = Value.to_float y0 and x1 = Value.to_float x1 in
  let y1 = Value.to_float y1 in
  if Float.equal x1 x0 then Value.Float y0
  else Value.Float (y0 +. ((x -. x0) /. (x1 -. x0) *. (y1 -. y0)))

let eval name args =
  check_arity name args;
  match name, args with
  | "add", [ a; b ] -> Value.add a b
  | "sub", [ a; b ] -> Value.sub a b
  | "mul", [ a; b ] -> Value.mul a b
  | "div", [ a; b ] -> Value.div a b
  | "min", [ a; b ] -> Value.min_v a b
  | "max", [ a; b ] -> Value.max_v a b
  | "abs", [ a ] -> Value.abs a
  | "sign", [ a ] -> sign a
  | "sqrt", [ a ] -> Value.Float (Float.sqrt (Value.to_float a))
  | "round", [ a ] -> Value.Float (Float.round (Value.to_float a))
  | "floor", [ a ] -> Value.Float (Float.floor (Value.to_float a))
  | "ceil", [ a ] -> Value.Float (Float.ceil (Value.to_float a))
  | "limit", [ x; lo; hi ] -> limit x lo hi
  | "deadband", [ x; w ] -> deadband x w
  | "select", [ b; x; y ] -> if Value.truth b then x else y
  | "avg2", [ a; b ] ->
    Value.Float ((Value.to_float a +. Value.to_float b) /. 2.)
  | "interp1", [ x; x0; y0; x1; y1 ] -> interp1 x x0 y0 x1 y1
  | _ -> raise (Unknown_function name)

let numeric_join tys =
  if List.for_all Dtype.is_numeric tys then
    if List.exists (Dtype.equal Dtype.Tfloat) tys then Ok Dtype.Tfloat
    else Ok Dtype.Tint
  else Error "numeric arguments expected"

let result_type name arg_types =
  match arity name with
  | None -> Error (Printf.sprintf "unknown library function %s" name)
  | Some n when List.length arg_types <> n ->
    Error
      (Printf.sprintf "%s expects %d arguments, got %d" name n
         (List.length arg_types))
  | Some _ ->
    (match name, arg_types with
     | ("add" | "sub" | "mul" | "div" | "min" | "max"), tys -> numeric_join tys
     | ("abs" | "sign"), tys -> numeric_join tys
     | ("sqrt" | "round" | "floor" | "ceil" | "avg2" | "interp1"), tys ->
       (match numeric_join tys with
        | Ok _ -> Ok Dtype.Tfloat
        | Error _ as e -> e)
     | ("limit" | "deadband"), tys -> numeric_join tys
     | "select", [ tb; tx; ty ] ->
       if not (Dtype.equal tb Dtype.Tbool) then
         Error "select: first argument must be bool"
       else if Dtype.equal tx ty then Ok tx
       else if Dtype.is_numeric tx && Dtype.is_numeric ty then Ok Dtype.Tfloat
       else Error "select: branch types differ"
     | _ -> Error (Printf.sprintf "no typing rule for %s" name))
