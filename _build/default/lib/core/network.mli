(** Structural well-formedness of component networks, shared by SSDs
    (paper Sec. 3.1) and DFDs (paper Sec. 3.2).

    A network is checked {e relative to its enclosing component}: channel
    endpoints may refer to sub-component ports or to the enclosing
    boundary ports.  Directionality convention: a channel flows from a
    data source (sub-component [Out] port, or boundary [In] port) to a
    data sink (sub-component [In] port, or boundary [Out] port). *)

type issue = {
  issue_severity : [ `Error | `Warning ];
  issue_msg : string;
}

val pp_issue : Format.formatter -> issue -> unit

val errors : issue list -> string list
(** Messages of the [`Error]-severity issues. *)

val check :
  ?require_static_types:bool -> enclosing:Model.component -> Model.network ->
  issue list
(** All structural issues of the network:
    - duplicate component / channel names ([`Error]);
    - unresolvable endpoints: unknown component or port ([`Error]);
    - direction violations: channel reading an [In] port of a sibling or
      writing an [Out] port of a sibling ([`Error]);
    - several channels driving the same destination port ([`Error]);
    - type incompatibility between two statically typed endpoints
      ([`Error]);
    - clock mismatch between statically clocked endpoints ([`Warning],
      since refinement may still insert rate adapters);
    - unconnected sub-component input ports ([`Warning]);
    - with [require_static_types] (SSD interfaces are statically typed):
      untyped ports on any sub-component ([`Error]). *)

val resolve_port :
  enclosing:Model.component -> Model.network -> Model.endpoint ->
  Model.port option
(** The port a well-formed endpoint denotes. *)

val driver_of :
  Model.network -> Model.endpoint -> Model.channel option
(** The channel driving the given destination endpoint, if any. *)

val flatten : prefix_sep:string -> Model.network -> Model.network
(** Inline every sub-component that is itself defined by a network of the
    same kind, one level at a time until fixpoint.  Inner component names
    are prefixed with the inlined component's name and [prefix_sep].
    Channels crossing the dissolved boundary are re-spliced; a dissolved
    channel keeps a delay if either spliced half was delayed. *)
