let find_mode (mtd : Model.mtd) name =
  List.find_opt
    (fun (m : Model.mode) -> String.equal m.mode_name name)
    mtd.mtd_modes

let deterministic (mtd : Model.mtd) =
  List.for_all
    (fun (m : Model.mode) ->
      let priorities =
        List.filter_map
          (fun (t : Model.mtd_transition) ->
            if String.equal t.mt_src m.mode_name then Some t.mt_priority
            else None)
          mtd.mtd_transitions
      in
      let distinct = List.sort_uniq Int.compare priorities in
      List.length distinct = List.length priorities)
    mtd.mtd_modes

let check (mtd : Model.mtd) =
  let errors = ref [] in
  let error fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let mode_names = List.map (fun (m : Model.mode) -> m.mode_name) mtd.mtd_modes in
  if mode_names = [] then error "MTD %s has no modes" mtd.mtd_name;
  if not (List.mem mtd.mtd_initial mode_names) then
    error "initial mode %s not declared" mtd.mtd_initial;
  let distinct = List.sort_uniq String.compare mode_names in
  if List.length distinct <> List.length mode_names then
    error "duplicate mode names in MTD %s" mtd.mtd_name;
  List.iter
    (fun (t : Model.mtd_transition) ->
      if not (List.mem t.mt_src mode_names) then
        error "transition source mode %s not declared" t.mt_src;
      if not (List.mem t.mt_dst mode_names) then
        error "transition target mode %s not declared" t.mt_dst;
      if Expr.has_memory_operator t.mt_guard then
        error "guard of %s->%s uses pre/current" t.mt_src t.mt_dst)
    mtd.mtd_transitions;
  if not (deterministic mtd) then
    error "non-deterministic MTD %s: shared priorities on one source mode"
      mtd.mtd_name;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let reachable_modes (mtd : Model.mtd) =
  let rec go visited frontier =
    match frontier with
    | [] -> List.rev visited
    | m :: rest ->
      if List.mem m visited then go visited rest
      else
        let successors =
          List.filter_map
            (fun (t : Model.mtd_transition) ->
              if String.equal t.mt_src m then Some t.mt_dst else None)
            mtd.mtd_transitions
        in
        go (m :: visited) (rest @ successors)
  in
  go [] [ mtd.mtd_initial ]

let guard_enabled ~schedule ~tick ~env guard =
  let msg, _ = Expr.step ~schedule ~tick ~env guard (Expr.init_state guard) in
  match msg with
  | Value.Absent -> false
  | Value.Present v -> (try Value.truth v with Value.Type_error _ -> false)

let enabled_transition ?(schedule = Clock.no_events) ~tick ~env
    (mtd : Model.mtd) ~current =
  let candidates =
    List.filter
      (fun (t : Model.mtd_transition) -> String.equal t.mt_src current)
      mtd.mtd_transitions
  in
  let sorted =
    List.sort
      (fun (a : Model.mtd_transition) b ->
        Int.compare a.mt_priority b.mt_priority)
      candidates
  in
  List.find_opt
    (fun (t : Model.mtd_transition) ->
      guard_enabled ~schedule ~tick ~env t.mt_guard)
    sorted

let mode_enum (mtd : Model.mtd) =
  Dtype.enum (mtd.mtd_name ^ "_mode")
    (List.map (fun (m : Model.mode) -> m.mode_name) mtd.mtd_modes)

let pair_name a b = a ^ "_" ^ b

(* Synchronous product.  From joint mode (m1, m2):
   - for every pair (t1, t2): guard g1 && g2, target (d1, d2);
   - for every t1: guard g1 && not (any g2 from m2), target (d1, m2);
   - symmetrically for t2.
   Priorities combine lexicographically so that determinism of the factors
   implies determinism of the product. *)
let product (a : Model.mtd) (b : Model.mtd) : Model.mtd =
  let open Model in
  let out_of (mtd : mtd) mode =
    List.filter (fun t -> String.equal t.mt_src mode) mtd.mtd_transitions
  in
  let disjunction = function
    | [] -> Expr.bool false
    | g :: gs -> List.fold_left (fun acc g' -> Expr.( || ) acc g') g gs
  in
  let modes =
    List.concat_map
      (fun (m1 : mode) ->
        List.map
          (fun (m2 : mode) ->
            { mode_name = pair_name m1.mode_name m2.mode_name;
              mode_behavior = B_unspecified })
          b.mtd_modes)
      a.mtd_modes
  in
  let transitions =
    List.concat_map
      (fun (m1 : mode) ->
        List.concat_map
          (fun (m2 : mode) ->
            let src = pair_name m1.mode_name m2.mode_name in
            let ts1 = out_of a m1.mode_name and ts2 = out_of b m2.mode_name in
            (* totalized guards: an absent sibling guard must read as "not
               enabled" instead of making the conjunction absent *)
            let tg t = Expr.totalize_guard t.mt_guard in
            let none1 = Expr.not_ (disjunction (List.map tg ts1)) in
            let none2 = Expr.not_ (disjunction (List.map tg ts2)) in
            let joint =
              List.concat_map
                (fun t1 ->
                  List.map
                    (fun t2 ->
                      { mt_src = src;
                        mt_dst = pair_name t1.mt_dst t2.mt_dst;
                        mt_guard = Expr.( && ) (tg t1) (tg t2);
                        mt_priority = 0 })
                    ts2)
                ts1
            in
            let left_only =
              List.map
                (fun t1 ->
                  { mt_src = src;
                    mt_dst = pair_name t1.mt_dst m2.mode_name;
                    mt_guard = Expr.( && ) (tg t1) none2;
                    mt_priority = 0 })
                ts1
            in
            let right_only =
              List.map
                (fun t2 ->
                  { mt_src = src;
                    mt_dst = pair_name m1.mode_name t2.mt_dst;
                    mt_guard = Expr.( && ) none1 (tg t2);
                    mt_priority = 0 })
                ts2
            in
            (* Guards of the three groups are pairwise disjoint, so the order
               below is semantically free; distinct priorities per source
               keep the product syntactically deterministic. *)
            List.mapi
              (fun i t -> { t with mt_priority = i })
              (joint @ left_only @ right_only))
          b.mtd_modes)
      a.mtd_modes
  in
  { mtd_name = pair_name a.mtd_name b.mtd_name;
    mtd_modes = modes;
    mtd_initial = pair_name a.mtd_initial b.mtd_initial;
    mtd_transitions = transitions }
