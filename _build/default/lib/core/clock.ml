type t =
  | Base
  | Every of int * t
  | Shift of int * t
  | Event of string

type form = Periodic of { period : int; start : int } | Aperiodic of string

exception Invalid_clock of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_clock s)) fmt

let every n c = if n < 1 then invalid "every: factor %d < 1" n else Every (n, c)

let shift k c =
  if k < 0 then invalid "shift: negative offset %d" k else Shift (k, c)

let event name = Event name

let rec canon = function
  | Base -> Periodic { period = 1; start = 0 }
  | Event name -> Aperiodic name
  | Every (n, c) ->
    if n < 1 then invalid "every: factor %d < 1" n;
    (match canon c with
     | Periodic { period; start } -> Periodic { period = n * period; start }
     | Aperiodic name -> invalid "every over aperiodic clock %s" name)
  | Shift (k, c) ->
    if k < 0 then invalid "shift: negative offset %d" k;
    (match canon c with
     | Periodic { period; start } ->
       Periodic { period; start = start + (k * period) }
     | Aperiodic name -> invalid "shift over aperiodic clock %s" name)

let equal a b =
  match canon a, canon b with
  | Periodic p1, Periodic p2 -> p1.period = p2.period && p1.start = p2.start
  | Aperiodic n1, Aperiodic n2 -> String.equal n1 n2
  | Periodic _, Aperiodic _ | Aperiodic _, Periodic _ -> false

let rec pp ppf = function
  | Base -> Format.pp_print_string ppf "true"
  | Every (n, c) -> Format.fprintf ppf "every(%d, %a)" n pp c
  | Shift (k, c) -> Format.fprintf ppf "shift(%d, %a)" k pp c
  | Event name -> Format.fprintf ppf "event(%s)" name

let to_string c = Format.asprintf "%a" pp c

type schedule = string -> int -> bool

let no_events _ _ = false

let active ?(schedule = no_events) c tick =
  match c with
  | Event name -> schedule name tick
  | Base | Every _ | Shift _ ->
    (match canon c with
     | Periodic { period; start } ->
       tick >= start && (tick - start) mod period = 0
     | Aperiodic _ -> assert false)

let activation_index c tick =
  match canon c with
  | Aperiodic name -> invalid "activation_index of aperiodic clock %s" name
  | Periodic { period; start } ->
    if tick >= start && (tick - start) mod period = 0 then
      Some ((tick - start) / period)
    else None

let is_subclock ~sub ~sup =
  match canon sub, canon sup with
  | Aperiodic n1, Aperiodic n2 -> String.equal n1 n2
  | Aperiodic _, Periodic { period = 1; start = 0 } -> true
  | Aperiodic _, Periodic _ -> false
  | Periodic _, Aperiodic _ -> false
  | Periodic p1, Periodic p2 ->
    p1.period mod p2.period = 0
    && p1.start >= p2.start
    && (p1.start - p2.start) mod p2.period = 0

(* Extended gcd: returns (g, x, y) with a*x + b*y = g. *)
let rec egcd a b =
  if b = 0 then (a, 1, 0)
  else
    let g, x, y = egcd b (a mod b) in
    (g, y, x - (a / b * y))

(* Smallest member >= lo of the progression start + k*period (k >= 0). *)
let first_at_least ~period ~start lo =
  if start >= lo then start
  else start + (((lo - start + period - 1) / period) * period)

(* The meet of two periodic clocks is the intersection of two arithmetic
   progressions: solve t = s1 (mod p1), t = s2 (mod p2) by CRT, then lift the
   solution above both starts.  The result (period lcm, start t0) is encoded
   as Every (lcm, Shift (t0, Base)), whose canonical form is exactly
   (period = lcm, start = t0) since Shift over Base moves the start by base
   ticks and Every scales the period. *)
let meet a b =
  match canon a, canon b with
  | Aperiodic n1, Aperiodic n2 when String.equal n1 n2 -> Some a
  | Aperiodic _, _ | _, Aperiodic _ -> None
  | Periodic p1, Periodic p2 ->
    let g, x, _ = egcd p1.period p2.period in
    if (p2.start - p1.start) mod g <> 0 then None
    else
      let lcm = p1.period / g * p2.period in
      let diff = p2.start - p1.start in
      let k = diff / g * x in
      let t0 = p1.start + (k * p1.period) in
      let t0 = ((t0 mod lcm) + lcm) mod lcm in
      let t0 =
        first_at_least ~period:lcm ~start:t0 (Stdlib.max p1.start p2.start)
      in
      Some (Every (lcm, Shift (t0, Base)))

let harmonic a b = is_subclock ~sub:a ~sup:b || is_subclock ~sub:b ~sup:a

let period_ratio ~fast ~slow =
  match canon fast, canon slow with
  | Periodic pf, Periodic ps when ps.period mod pf.period = 0 ->
    Some (ps.period / pf.period)
  | Periodic _, Periodic _ | Aperiodic _, _ | _, Aperiodic _ -> None
