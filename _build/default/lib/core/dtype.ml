type enum_decl = { enum_name : string; literals : string list }

type t =
  | Tbool
  | Tint
  | Tfloat
  | Tenum of enum_decl
  | Ttuple of t list

let rec equal a b =
  match a, b with
  | Tbool, Tbool | Tint, Tint | Tfloat, Tfloat -> true
  | Tenum e1, Tenum e2 -> String.equal e1.enum_name e2.enum_name
  | Ttuple xs, Ttuple ys -> List.equal equal xs ys
  | (Tbool | Tint | Tfloat | Tenum _ | Ttuple _), _ -> false

let rec pp ppf = function
  | Tbool -> Format.pp_print_string ppf "bool"
  | Tint -> Format.pp_print_string ppf "int"
  | Tfloat -> Format.pp_print_string ppf "float"
  | Tenum e -> Format.pp_print_string ppf e.enum_name
  | Ttuple ts ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " * ") pp)
      ts

let to_string ty = Format.asprintf "%a" pp ty

let enum name literals =
  if literals = [] then invalid_arg "Dtype.enum: empty literal list";
  let sorted = List.sort_uniq String.compare literals in
  if List.length sorted <> List.length literals then
    invalid_arg ("Dtype.enum: duplicate literals in " ^ name);
  Tenum { enum_name = name; literals }

let enum_value ty lit =
  match ty with
  | Tenum e when List.mem lit e.literals -> Value.Enum (e.enum_name, lit)
  | Tenum e ->
    invalid_arg
      (Printf.sprintf "Dtype.enum_value: %s is not a literal of %s" lit
         e.enum_name)
  | Tbool | Tint | Tfloat | Ttuple _ ->
    invalid_arg "Dtype.enum_value: not an enum type"

let is_numeric = function
  | Tint | Tfloat -> true
  | Tbool | Tenum _ | Ttuple _ -> false

let rec type_of_value : Value.t -> t = function
  | Value.Bool _ -> Tbool
  | Value.Int _ -> Tint
  | Value.Float _ -> Tfloat
  | Value.Enum (name, lit) -> Tenum { enum_name = name; literals = [ lit ] }
  | Value.Tuple vs -> Ttuple (List.map type_of_value vs)

let rec value_has_type (v : Value.t) ty =
  match v, ty with
  | Value.Bool _, Tbool | Value.Int _, Tint | Value.Float _, Tfloat -> true
  | Value.Enum (name, lit), Tenum e ->
    String.equal name e.enum_name && List.mem lit e.literals
  | Value.Tuple vs, Ttuple ts ->
    List.length vs = List.length ts && List.for_all2 value_has_type vs ts
  | (Value.Bool _ | Value.Int _ | Value.Float _ | Value.Enum _ | Value.Tuple _), _
    -> false

let rec default_value = function
  | Tbool -> Value.Bool false
  | Tint -> Value.Int 0
  | Tfloat -> Value.Float 0.
  | Tenum e ->
    (match e.literals with
     | [] -> assert false
     | first :: _ -> Value.Enum (e.enum_name, first))
  | Ttuple ts -> Value.Tuple (List.map default_value ts)

let compatible ~src ~dst =
  equal src dst
  ||
  match src, dst with
  | Tint, Tfloat -> true
  | (Tbool | Tint | Tfloat | Tenum _ | Ttuple _), _ -> false
