lib/core/dtype.ml: Format List Printf String Value
