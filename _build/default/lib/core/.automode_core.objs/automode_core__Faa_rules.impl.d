lib/core/faa_rules.ml: Causality Clock Format Int List Model Network Option Printf String
