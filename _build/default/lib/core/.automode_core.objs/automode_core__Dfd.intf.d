lib/core/dfd.mli: Dtype Expr Model Network Value
