lib/core/block_lib.ml: Dtype Float List Printf Value
