lib/core/expr.mli: Clock Dtype Format Value
