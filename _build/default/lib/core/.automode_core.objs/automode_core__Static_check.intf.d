lib/core/static_check.mli: Format Model
