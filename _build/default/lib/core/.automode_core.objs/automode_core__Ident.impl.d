lib/core/ident.ml: Format List String
