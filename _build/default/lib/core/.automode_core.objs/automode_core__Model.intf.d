lib/core/model.mli: Clock Dtype Expr Format Value
