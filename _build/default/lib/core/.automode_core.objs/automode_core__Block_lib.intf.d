lib/core/block_lib.mli: Dtype Value
