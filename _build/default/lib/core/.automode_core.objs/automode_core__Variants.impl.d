lib/core/variants.ml: Format List Model String
