lib/core/std_machine.ml: Clock Expr Format Int List Model String Value
