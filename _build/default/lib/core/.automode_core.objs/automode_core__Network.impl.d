lib/core/network.ml: Clock Dtype Format List Model String
