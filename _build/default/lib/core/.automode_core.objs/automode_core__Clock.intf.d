lib/core/clock.mli: Format
