lib/core/trace.mli: Format Value
