lib/core/clock.ml: Format Stdlib String
