lib/core/model.ml: Clock Dtype Expr Format List Printf String Value
