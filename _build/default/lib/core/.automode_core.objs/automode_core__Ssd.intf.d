lib/core/ssd.mli: Model Network
