lib/core/static_check.ml: Causality Clock Dtype Expr Format List Model Mtd Network Option Printf Std_machine String
