lib/core/network.mli: Format Model
