lib/core/dfd.ml: Causality List Model Network Printf String
