lib/core/dtype.mli: Format Value
