lib/core/mtd.mli: Clock Dtype Expr Model
