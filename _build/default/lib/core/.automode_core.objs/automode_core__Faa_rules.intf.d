lib/core/faa_rules.mli: Format Model
