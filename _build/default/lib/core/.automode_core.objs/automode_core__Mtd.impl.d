lib/core/mtd.ml: Clock Dtype Expr Format Int List Model String Value
