lib/core/simplify.mli: Expr Model
