lib/core/std_machine.mli: Clock Expr Model Value
