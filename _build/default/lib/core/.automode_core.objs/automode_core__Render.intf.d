lib/core/render.mli: Format Model
