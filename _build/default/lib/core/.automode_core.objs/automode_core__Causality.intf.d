lib/core/causality.mli: Model
