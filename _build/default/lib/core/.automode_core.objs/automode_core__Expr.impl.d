lib/core/expr.ml: Block_lib Clock Dtype Format List Option Printf Result Stdlib String Value
