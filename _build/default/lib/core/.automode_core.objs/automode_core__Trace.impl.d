lib/core/trace.ml: Buffer Format List Stdlib String Value
