lib/core/simplify.ml: Block_lib Clock Expr Float List Model Value
