lib/core/ident.mli: Format
