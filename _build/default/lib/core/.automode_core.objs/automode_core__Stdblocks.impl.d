lib/core/stdblocks.ml: Dfd Dtype Expr List Model Value
