lib/core/sim.ml: Causality Clock Dtype Expr Format List Model Mtd Option Std_machine Stdlib String Trace Value
