lib/core/render.ml: Clock Dtype Expr Format List Model Printf Stdlib String Value
