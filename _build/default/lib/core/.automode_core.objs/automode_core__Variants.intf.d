lib/core/variants.mli: Format Model
