lib/core/causality.ml: Hashtbl Int List Model Stdlib String
