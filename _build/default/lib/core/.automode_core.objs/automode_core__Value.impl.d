lib/core/value.ml: Bool Float Format Int List Stdlib String
