lib/core/sim.mli: Clock Model Trace Value
