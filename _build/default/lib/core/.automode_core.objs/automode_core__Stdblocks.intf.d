lib/core/stdblocks.mli: Clock Model Value
