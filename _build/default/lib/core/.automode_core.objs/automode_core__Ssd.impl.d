lib/core/ssd.ml: List Model Network String
