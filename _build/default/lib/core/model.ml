type level = Faa | Fda | La | Ta | Oa

let level_name = function
  | Faa -> "FAA"
  | Fda -> "FDA"
  | La -> "LA"
  | Ta -> "TA"
  | Oa -> "OA"

let pp_level ppf level = Format.pp_print_string ppf (level_name level)

type port_dir = In | Out

type port = {
  port_name : string;
  port_dir : port_dir;
  port_type : Dtype.t option;
  port_clock : Clock.t;
  port_resource : string option;
}

let port ?ty ?(clock = Clock.Base) ?resource dir name =
  { port_name = name;
    port_dir = dir;
    port_type = ty;
    port_clock = clock;
    port_resource = resource }

let in_port ?ty ?clock ?resource name = port ?ty ?clock ?resource In name
let out_port ?ty ?clock ?resource name = port ?ty ?clock ?resource Out name

type endpoint = { ep_comp : string option; ep_port : string }

let boundary port = { ep_comp = None; ep_port = port }
let at comp port = { ep_comp = Some comp; ep_port = port }

type channel = {
  ch_name : string;
  ch_src : endpoint;
  ch_dst : endpoint;
  ch_delayed : bool;
  ch_init : Value.t option;
}

let channel ?(delayed = false) ?init ~name src dst =
  { ch_name = name; ch_src = src; ch_dst = dst; ch_delayed = delayed;
    ch_init = init }

type behavior =
  | B_exprs of (string * Expr.t) list
  | B_std of std
  | B_mtd of mtd
  | B_dfd of network
  | B_ssd of network
  | B_unspecified

and component = {
  comp_name : string;
  comp_ports : port list;
  comp_behavior : behavior;
}

and network = {
  net_name : string;
  net_components : component list;
  net_channels : channel list;
}

and mtd = {
  mtd_name : string;
  mtd_modes : mode list;
  mtd_initial : string;
  mtd_transitions : mtd_transition list;
}

and mode = { mode_name : string; mode_behavior : behavior }

and mtd_transition = {
  mt_src : string;
  mt_dst : string;
  mt_guard : Expr.t;
  mt_priority : int;
}

and std = {
  std_name : string;
  std_states : string list;
  std_initial : string;
  std_vars : (string * Value.t) list;
  std_transitions : std_transition list;
}

and std_transition = {
  st_src : string;
  st_dst : string;
  st_guard : Expr.t;
  st_outputs : (string * Expr.t) list;
  st_updates : (string * Expr.t) list;
  st_priority : int;
}

type model = {
  model_name : string;
  model_level : level;
  model_root : component;
  model_enums : Dtype.enum_decl list;
}

let component ?(ports = []) ?(behavior = B_unspecified) name =
  { comp_name = name; comp_ports = ports; comp_behavior = behavior }

let find_port comp name =
  List.find_opt (fun p -> String.equal p.port_name name) comp.comp_ports

let input_ports comp =
  List.filter (fun p -> p.port_dir = In) comp.comp_ports

let output_ports comp =
  List.filter (fun p -> p.port_dir = Out) comp.comp_ports

let find_component net name =
  List.find_opt (fun c -> String.equal c.comp_name name) net.net_components

let behavior_kind = function
  | B_exprs _ -> "exprs"
  | B_std _ -> "std"
  | B_mtd _ -> "mtd"
  | B_dfd _ -> "dfd"
  | B_ssd _ -> "ssd"
  | B_unspecified -> "unspecified"

let rec map_network f comp =
  let map_net net =
    let components = List.map (map_network f) net.net_components in
    f { net with net_components = components }
  in
  let behavior =
    match comp.comp_behavior with
    | B_dfd net -> B_dfd (map_net net)
    | B_ssd net -> B_ssd (map_net net)
    | B_mtd mtd ->
      let map_mode mode =
        let behavior =
          match mode.mode_behavior with
          | B_dfd net -> B_dfd (map_net net)
          | B_ssd net -> B_ssd (map_net net)
          | (B_exprs _ | B_std _ | B_mtd _ | B_unspecified) as b -> b
        in
        { mode with mode_behavior = behavior }
      in
      B_mtd { mtd with mtd_modes = List.map map_mode mtd.mtd_modes }
    | (B_exprs _ | B_std _ | B_unspecified) as b -> b
  in
  { comp with comp_behavior = behavior }

let iter_components f comp =
  let rec go path comp =
    f path comp;
    let sub_path = path @ [ comp.comp_name ] in
    let visit_net net = List.iter (go sub_path) net.net_components in
    match comp.comp_behavior with
    | B_dfd net | B_ssd net -> visit_net net
    | B_mtd mtd ->
      let visit_mode mode =
        match mode.mode_behavior with
        | B_dfd net | B_ssd net -> visit_net net
        | B_exprs _ | B_std _ | B_mtd _ | B_unspecified -> ()
      in
      List.iter visit_mode mtd.mtd_modes
    | B_exprs _ | B_std _ | B_unspecified -> ()
  in
  go [] comp

let count_components comp =
  let n = ref 0 in
  iter_components (fun _ _ -> incr n) comp;
  !n

let validate_unique_names net =
  let dup kind names =
    let sorted = List.sort String.compare names in
    let rec first_dup = function
      | a :: (b :: _ as rest) ->
        if String.equal a b then Some a else first_dup rest
      | [ _ ] | [] -> None
    in
    match first_dup sorted with
    | Some name ->
      Some (Printf.sprintf "duplicate %s name %s in network %s" kind name
              net.net_name)
    | None -> None
  in
  let comp_names = List.map (fun c -> c.comp_name) net.net_components in
  let ch_names = List.map (fun c -> c.ch_name) net.net_channels in
  match dup "component" comp_names with
  | Some msg -> Error msg
  | None ->
    (match dup "channel" ch_names with
     | Some msg -> Error msg
     | None -> Ok ())
