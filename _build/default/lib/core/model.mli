(** The AutoMoDe meta-model (paper Sec. 3).

    All notations — SSDs, DFDs, MTDs, STDs — are views on one coherent
    meta-model, which guarantees consistency between abstraction levels.
    This module holds the shared abstract syntax; the per-notation
    operations live in {!Ssd}, {!Dfd}, {!Mtd} and {!Std_machine}.

    Structural conventions:
    - A {!type:component} is a typed box with named, directed ports.
    - A {!type:channel} connects a source endpoint to a destination
      endpoint inside one network.  Endpoints either name a sub-component
      port or (with [ep_comp = None]) a port on the enclosing component's
      own boundary.
    - SSD channels between components carry an implicit one-tick message
      delay (paper Sec. 3.1); DFD channels are instantaneous unless the
      explicit [ch_delayed] delay operator is set.  Channels forwarding a
      boundary port are never delayed. *)

type level = Faa | Fda | La | Ta | Oa

val level_name : level -> string
val pp_level : Format.formatter -> level -> unit

type port_dir = In | Out

type port = {
  port_name : string;
  port_dir : port_dir;
  port_type : Dtype.t option;
      (** [None] = dynamically typed (allowed inside DFDs, paper 3.2) *)
  port_clock : Clock.t;
  port_resource : string option;
      (** sensor/actuator resource tag, used by the FAA rules *)
}

val port :
  ?ty:Dtype.t -> ?clock:Clock.t -> ?resource:string -> port_dir -> string ->
  port
(** Port constructor; defaults: untyped, base clock, no resource. *)

val in_port : ?ty:Dtype.t -> ?clock:Clock.t -> ?resource:string -> string -> port
val out_port : ?ty:Dtype.t -> ?clock:Clock.t -> ?resource:string -> string -> port

type endpoint = {
  ep_comp : string option;  (** [None] = enclosing component boundary *)
  ep_port : string;
}

val boundary : string -> endpoint
val at : string -> string -> endpoint
(** [at comp port] is the endpoint [port] of sub-component [comp]. *)

type channel = {
  ch_name : string;
  ch_src : endpoint;
  ch_dst : endpoint;
  ch_delayed : bool;          (** explicit delay operator on the channel *)
  ch_init : Value.t option;   (** initial value of the delay register *)
}

val channel :
  ?delayed:bool -> ?init:Value.t -> name:string -> endpoint -> endpoint ->
  channel

(** {1 Behaviors and components} *)

type behavior =
  | B_exprs of (string * Expr.t) list
      (** direct definition: one base-language expression per output port *)
  | B_std of std
  | B_mtd of mtd
  | B_dfd of network   (** recursively defined by a DFD *)
  | B_ssd of network   (** recursively defined by an SSD *)
  | B_unspecified
      (** behavior intentionally left open (adequate on the FAA level) *)

and component = {
  comp_name : string;
  comp_ports : port list;
  comp_behavior : behavior;
}

and network = {
  net_name : string;
  net_components : component list;
  net_channels : channel list;
}

(** Mode Transition Diagram: modes with subordinate behaviors and
    message-triggered transitions (paper Sec. 3.2). *)
and mtd = {
  mtd_name : string;
  mtd_modes : mode list;
  mtd_initial : string;
  mtd_transitions : mtd_transition list;
}

and mode = { mode_name : string; mode_behavior : behavior }

and mtd_transition = {
  mt_src : string;
  mt_dst : string;
  mt_guard : Expr.t;     (** over the MTD component's input ports *)
  mt_priority : int;     (** smaller = higher priority *)
}

(** State Transition Diagram: restricted extended FSM (paper Sec. 3.2). *)
and std = {
  std_name : string;
  std_states : string list;
  std_initial : string;
  std_vars : (string * Value.t) list;  (** extended state variables + inits *)
  std_transitions : std_transition list;
}

and std_transition = {
  st_src : string;
  st_dst : string;
  st_guard : Expr.t;                   (** over inputs and state variables *)
  st_outputs : (string * Expr.t) list; (** output port assignments *)
  st_updates : (string * Expr.t) list; (** state variable assignments *)
  st_priority : int;
}

type model = {
  model_name : string;
  model_level : level;
  model_root : component;
  model_enums : Dtype.enum_decl list;
}

(** {1 Accessors} *)

val component :
  ?ports:port list -> ?behavior:behavior -> string -> component
(** Component constructor; default behavior {!B_unspecified}. *)

val find_port : component -> string -> port option
val input_ports : component -> port list
val output_ports : component -> port list
val find_component : network -> string -> component option

val behavior_kind : behavior -> string
(** ["exprs" | "std" | "mtd" | "dfd" | "ssd" | "unspecified"]. *)

val map_network : (network -> network) -> component -> component
(** Apply a network rewriting function to all networks of a component,
    bottom-up (sub-networks first, including those inside MTD modes). *)

val iter_components : (string list -> component -> unit) -> component -> unit
(** Depth-first visit of all components with their hierarchical path
    (outermost first; the root component's own name is not included). *)

val count_components : component -> int
(** Total number of components in the hierarchy, root included. *)

val validate_unique_names : network -> (unit, string) result
(** Component and channel names within a network are unique. *)
