(** Data Flow Diagrams (paper Sec. 3.2).

    DFDs define the algorithmic computation of a component: networks of
    blocks with (possibly dynamically typed) ports, communicating
    instantaneously in the sense of synchronous languages.  Atomic blocks
    are defined by an expression of the base language, an STD, or an MTD;
    composite blocks by another DFD.

    The companion causality check lives in {!Causality}. *)

val of_network :
  ?ports:Model.port list -> Model.network -> Model.component
(** Wrap a network as a component whose behavior is [B_dfd]. *)

val check :
  enclosing:Model.component -> Model.network -> Network.issue list
(** DFD well-formedness: the {!Network.check} conditions (dynamic typing
    allowed) plus an [`Error] for every instantaneous loop. *)

val check_component : Model.component -> Network.issue list
(** {!check} over every DFD network in the component's hierarchy. *)

val flatten : Model.network -> Model.network
(** Inline hierarchical sub-DFDs (and sub-SSDs, preserving their delays)
    into one flat block network. *)

val block_of_expr :
  name:string -> inputs:(string * Dtype.t option) list ->
  ?out:string -> ?out_type:Dtype.t -> Expr.t -> Model.component
(** An atomic single-output block computing the given expression, like
    the paper's [ADD] block defined by [ch1 + ch2 + ch3]. *)

val wire :
  ?delayed:bool -> ?init:Value.t -> string ->
  string * string -> string * string -> Model.channel
(** [wire name (comp_a, port_a) (comp_b, port_b)] — channel between two
    sibling blocks.  Use [""] as the component name for the boundary. *)
