type unop = Neg | Not | Abs

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or
  | Eq | Ne | Lt | Le | Gt | Ge
  | Min | Max

type t =
  | Const of Value.t
  | Var of string
  | Unop of unop * t
  | Binop of binop * t * t
  | If of t * t * t
  | Pre of Value.t * t
  | When of t * Clock.t
  | Current of Value.t * t
  | Call of string * t list
  | Is_present of string

let bool b = Const (Value.Bool b)
let int i = Const (Value.Int i)
let float f = Const (Value.Float f)
let var name = Var name
let not_ a = Unop (Not, a)
let if_ c a b = If (c, a, b)
let pre init e = Pre (init, e)
let when_ e c = When (e, c)
let current init e = Current (init, e)

let unop_name = function Neg -> "-" | Not -> "not " | Abs -> "abs "

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "mod"
  | And -> "and" | Or -> "or"
  | Eq -> "=" | Ne -> "/=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Min -> "min" | Max -> "max"

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Var name -> Format.pp_print_string ppf name
  | Unop (op, e) -> Format.fprintf ppf "(%s%a)" (unop_name op) pp e
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | If (c, a, b) ->
    Format.fprintf ppf "(if %a then %a else %a)" pp c pp a pp b
  | Pre (init, e) -> Format.fprintf ppf "pre(%a, %a)" Value.pp init pp e
  | When (e, c) -> Format.fprintf ppf "(%a when %a)" pp e Clock.pp c
  | Current (init, e) ->
    Format.fprintf ppf "current(%a, %a)" Value.pp init pp e
  | Call (name, args) ->
    Format.fprintf ppf "%s(%a)" name
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      args
  | Is_present port -> Format.fprintf ppf "present(%s)" port

let to_string e = Format.asprintf "%a" pp e

let free_vars e =
  let rec go acc = function
    | Const _ -> acc
    | Var name | Is_present name ->
      if List.mem name acc then acc else name :: acc
    | Unop (_, e) | Pre (_, e) | When (e, _) | Current (_, e) -> go acc e
    | Binop (_, a, b) -> go (go acc a) b
    | If (c, a, b) -> go (go (go acc c) a) b
    | Call (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] e)

let rec depends_instantaneously_on e port =
  match e with
  | Const _ -> false
  | Var name | Is_present name -> String.equal name port
  | Pre (_, _) -> false
  | Unop (_, e) | When (e, _) | Current (_, e) ->
    depends_instantaneously_on e port
  | Binop (_, a, b) ->
    depends_instantaneously_on a port || depends_instantaneously_on b port
  | If (c, a, b) ->
    depends_instantaneously_on c port
    || depends_instantaneously_on a port
    || depends_instantaneously_on b port
  | Call (_, args) ->
    List.exists (fun a -> depends_instantaneously_on a port) args

let rec has_memory_operator = function
  | Pre _ | Current _ -> true
  | Const _ | Var _ | Is_present _ -> false
  | Unop (_, e) | When (e, _) -> has_memory_operator e
  | Binop (_, a, b) -> has_memory_operator a || has_memory_operator b
  | If (c, a, b) ->
    has_memory_operator c || has_memory_operator a || has_memory_operator b
  | Call (_, args) -> List.exists has_memory_operator args

let totalize_guard g =
  match free_vars g with
  | [] -> g
  | v :: vs ->
    let all_present =
      List.fold_left
        (fun acc v' -> Binop (And, acc, Is_present v'))
        (Is_present v) vs
    in
    If (all_present, g, Const (Value.Bool false))

(* Run-time state mirrors the expression tree so that every Pre/Current node
   owns exactly one register, without a separate compilation pass. *)
type state =
  | St_leaf
  | St_un of state
  | St_bin of state * state
  | St_tri of state * state * state
  | St_pre of Value.t * state
  | St_current of Value.t * state
  | St_list of state list

let rec init_state = function
  | Const _ | Var _ | Is_present _ -> St_leaf
  | Unop (_, e) | When (e, _) -> St_un (init_state e)
  | Binop (_, a, b) -> St_bin (init_state a, init_state b)
  | If (c, a, b) -> St_tri (init_state c, init_state a, init_state b)
  | Pre (init, e) -> St_pre (init, init_state e)
  | Current (init, e) -> St_current (init, init_state e)
  | Call (_, args) -> St_list (List.map init_state args)

exception Eval_error of string

type env = string -> Value.message

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let state_mismatch () = eval_error "expression/state shape mismatch"

let apply_unop op v =
  match op with
  | Neg -> Value.neg v
  | Not -> Value.logical_not v
  | Abs -> Value.abs v

let apply_binop op a b =
  match op with
  | Add -> Value.add a b
  | Sub -> Value.sub a b
  | Mul -> Value.mul a b
  | Div -> Value.div a b
  | Mod -> Value.modulo a b
  | And -> Value.logical_and a b
  | Or -> Value.logical_or a b
  | Eq -> Value.eq a b
  | Ne -> Value.ne a b
  | Lt -> Value.lt a b
  | Le -> Value.le a b
  | Gt -> Value.gt a b
  | Ge -> Value.ge a b
  | Min -> Value.min_v a b
  | Max -> Value.max_v a b

let step ?(schedule = Clock.no_events) ~tick ~env expr state =
  let rec go expr state =
    match expr, state with
    | Const v, St_leaf -> (Value.Present v, St_leaf)
    | Var name, St_leaf -> (env name, St_leaf)
    | Is_present name, St_leaf ->
      let present =
        match env name with Value.Absent -> false | Value.Present _ -> true
      in
      (Value.Present (Value.Bool present), St_leaf)
    | Unop (op, e), St_un s ->
      let m, s' = go e s in
      let m' =
        match m with
        | Value.Absent -> Value.Absent
        | Value.Present v ->
          (try Value.Present (apply_unop op v)
           with Value.Type_error msg -> eval_error "%s" msg)
      in
      (m', St_un s')
    | Binop (op, a, b), St_bin (sa, sb) ->
      let ma, sa' = go a sa in
      let mb, sb' = go b sb in
      let m =
        match ma, mb with
        | Value.Present va, Value.Present vb ->
          (try Value.Present (apply_binop op va vb)
           with Value.Type_error msg -> eval_error "%s" msg)
        | (Value.Absent | Value.Present _), _ -> Value.Absent
      in
      (m, St_bin (sa', sb'))
    | If (c, a, b), St_tri (sc, sa, sb) ->
      let mc, sc' = go c sc in
      (* Both branches are evaluated to advance their Pre registers in step
         with their clocks, matching data-flow (not control-flow) semantics. *)
      let ma, sa' = go a sa in
      let mb, sb' = go b sb in
      let m =
        match mc with
        | Value.Absent -> Value.Absent
        | Value.Present vc ->
          (try if Value.truth vc then ma else mb
           with Value.Type_error msg -> eval_error "%s" msg)
      in
      (m, St_tri (sc', sa', sb'))
    | Pre (_, e), St_pre (stored, s) ->
      let m, s' = go e s in
      (match m with
       | Value.Absent -> (Value.Absent, St_pre (stored, s'))
       | Value.Present v -> (Value.Present stored, St_pre (v, s')))
    | When (e, c), St_un s ->
      let m, s' = go e s in
      let m' =
        if Clock.active ~schedule c tick then m else Value.Absent
      in
      (m', St_un s')
    | Current (_, e), St_current (held, s) ->
      let m, s' = go e s in
      (match m with
       | Value.Absent -> (Value.Present held, St_current (held, s'))
       | Value.Present v -> (Value.Present v, St_current (v, s')))
    | Call (name, args), St_list states ->
      if Stdlib.( <> ) (List.length args) (List.length states) then
        state_mismatch ();
      let results = List.map2 go args states in
      let msgs = List.map fst results and states' = List.map snd results in
      let all_present =
        List.filter_map
          (function Value.Present v -> Some v | Value.Absent -> None)
          msgs
      in
      let m =
        if Stdlib.( = ) (List.length all_present) (List.length msgs) then
          try Value.Present (Block_lib.eval name all_present) with
          | Block_lib.Unknown_function fn ->
            eval_error "unknown library function %s" fn
          | Block_lib.Arity_error msg | Value.Type_error msg ->
            eval_error "%s" msg
        else Value.Absent
      in
      (m, St_list states')
    | (Const _ | Var _ | Is_present _ | Unop _ | Binop _ | If _ | Pre _
      | When _ | Current _ | Call _), _ ->
      state_mismatch ()
  in
  go expr state

(* ------------------------------------------------------------------ *)
(* Static typing                                                      *)
(* ------------------------------------------------------------------ *)

type tenv = string -> Dtype.t option

let ( let* ) r f = Result.bind r f

let numeric_result a b =
  if Dtype.is_numeric a && Dtype.is_numeric b then
    if Dtype.equal a Dtype.Tfloat || Dtype.equal b Dtype.Tfloat then
      Ok Dtype.Tfloat
    else Ok Dtype.Tint
  else
    Error
      (Printf.sprintf "numeric operands expected, got %s and %s"
         (Dtype.to_string a) (Dtype.to_string b))

let rec typecheck ~tenv expr =
  match expr with
  | Const v -> Ok (Dtype.type_of_value v)
  | Var name ->
    (match tenv name with
     | Some ty -> Ok ty
     | None -> Error (Printf.sprintf "unknown port %s" name))
  | Is_present name ->
    (match tenv name with
     | Some _ -> Ok Dtype.Tbool
     | None -> Error (Printf.sprintf "unknown port %s" name))
  | Unop ((Neg | Abs) as op, e) ->
    let* ty = typecheck ~tenv e in
    if Dtype.is_numeric ty then Ok ty
    else
      Error (Printf.sprintf "numeric operand expected for %s" (unop_name op))
  | Unop (Not, e) ->
    let* ty = typecheck ~tenv e in
    if Dtype.equal ty Dtype.Tbool then Ok Dtype.Tbool
    else Error "not: bool operand expected"
  | Binop (op, a, b) ->
    let* ta = typecheck ~tenv a in
    let* tb = typecheck ~tenv b in
    (match op with
     | Add | Sub | Mul | Div | Min | Max -> numeric_result ta tb
     | Mod ->
       if Dtype.equal ta Dtype.Tint && Dtype.equal tb Dtype.Tint then
         Ok Dtype.Tint
       else Error "mod: integer operands expected"
     | And | Or ->
       if Dtype.equal ta Dtype.Tbool && Dtype.equal tb Dtype.Tbool then
         Ok Dtype.Tbool
       else Error (binop_name op ^ ": bool operands expected")
     | Lt | Le | Gt | Ge ->
       let* _ = numeric_result ta tb in
       Ok Dtype.Tbool
     | Eq | Ne ->
       if Dtype.equal ta tb || (Dtype.is_numeric ta && Dtype.is_numeric tb)
       then Ok Dtype.Tbool
       else
         Error
           (Printf.sprintf "%s: incomparable types %s and %s" (binop_name op)
              (Dtype.to_string ta) (Dtype.to_string tb)))
  | If (c, a, b) ->
    let* tc = typecheck ~tenv c in
    if not (Dtype.equal tc Dtype.Tbool) then
      Error "if: bool condition expected"
    else
      let* ta = typecheck ~tenv a in
      let* tb = typecheck ~tenv b in
      if Dtype.equal ta tb then Ok ta
      else if Dtype.is_numeric ta && Dtype.is_numeric tb then Ok Dtype.Tfloat
      else
        Error
          (Printf.sprintf "if: branch types differ (%s vs %s)"
             (Dtype.to_string ta) (Dtype.to_string tb))
  | Pre (init, e) | Current (init, e) ->
    let* te = typecheck ~tenv e in
    let ti = Dtype.type_of_value init in
    if Dtype.equal ti te || (Dtype.is_numeric ti && Dtype.is_numeric te) then
      Ok te
    else
      Error
        (Printf.sprintf "init value type %s does not match stream type %s"
           (Dtype.to_string ti) (Dtype.to_string te))
  | When (e, _) -> typecheck ~tenv e
  | Call (name, args) ->
    let rec check_all acc = function
      | [] -> Ok (List.rev acc)
      | arg :: rest ->
        let* ty = typecheck ~tenv arg in
        check_all (ty :: acc) rest
    in
    let* arg_types = check_all [] args in
    Block_lib.result_type name arg_types

(* ------------------------------------------------------------------ *)
(* Clock inference                                                    *)
(* ------------------------------------------------------------------ *)

type cenv = string -> Clock.t option

(* Constants and presence tests are clock-polymorphic; we track that with
   [None] (= "any clock") and unify at joins. *)
let rec infer_clock ~cenv expr =
  match expr with
  | Const _ -> Ok None
  | Var name | Is_present name ->
    (match cenv name with
     | Some c -> Ok (Some c)
     | None -> Error (Printf.sprintf "unknown port %s" name))
  | Unop (_, e) | Pre (_, e) -> infer_clock ~cenv e
  | Binop (op, a, b) ->
    let* ca = infer_clock ~cenv a in
    let* cb = infer_clock ~cenv b in
    unify (binop_name op) ca cb
  | If (c, a, b) ->
    let* cc = infer_clock ~cenv c in
    let* ca = infer_clock ~cenv a in
    let* cb = infer_clock ~cenv b in
    let* cab = unify "if" ca cb in
    unify "if" cc cab
  | When (e, c) ->
    let* ce = infer_clock ~cenv e in
    (match ce with
     | None -> Ok (Some c)
     | Some parent ->
       if Clock.is_subclock ~sub:c ~sup:parent then Ok (Some c)
       else
         Error
           (Printf.sprintf "when: %s is not a subclock of %s"
              (Clock.to_string c) (Clock.to_string parent)))
  | Current (_, _) -> Ok (Some Clock.Base)
  | Call (_, args) ->
    let rec unify_all acc = function
      | [] -> Ok acc
      | arg :: rest ->
        let* c = infer_clock ~cenv arg in
        let* acc' = unify "call" acc c in
        unify_all acc' rest
    in
    unify_all None args

and unify context ca cb =
  match ca, cb with
  | None, c | c, None -> Ok c
  | Some c1, Some c2 ->
    if Clock.equal c1 c2 then Ok (Some c1)
    else
      Error
        (Printf.sprintf "%s: operands on different clocks (%s vs %s)" context
           (Clock.to_string c1) (Clock.to_string c2))

let clock_of ~cenv expr =
  let* c = infer_clock ~cenv expr in
  Ok (Option.value c ~default:Clock.Base)

(* DSL operators, defined last so they do not shadow the standard operators
   in the implementation above. *)
let ( + ) a b = Binop (Add, a, b)
let ( - ) a b = Binop (Sub, a, b)
let ( * ) a b = Binop (Mul, a, b)
let ( / ) a b = Binop (Div, a, b)
let ( && ) a b = Binop (And, a, b)
let ( || ) a b = Binop (Or, a, b)
let ( = ) a b = Binop (Eq, a, b)
let ( < ) a b = Binop (Lt, a, b)
let ( <= ) a b = Binop (Le, a, b)
let ( > ) a b = Binop (Gt, a, b)
let ( >= ) a b = Binop (Ge, a, b)
