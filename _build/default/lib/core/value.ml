type t =
  | Bool of bool
  | Int of int
  | Float of float
  | Enum of string * string
  | Tuple of t list

type message = Absent | Present of t

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let rec equal a b =
  match a, b with
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Enum (t1, l1), Enum (t2, l2) -> String.equal t1 t2 && String.equal l1 l2
  | Tuple xs, Tuple ys -> List.equal equal xs ys
  | (Bool _ | Int _ | Float _ | Enum _ | Tuple _), _ -> false

let rec compare a b =
  match a, b with
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Enum (t1, l1), Enum (t2, l2) ->
    let c = String.compare t1 t2 in
    if c <> 0 then c else String.compare l1 l2
  | Tuple xs, Tuple ys -> List.compare compare xs ys
  | Bool _, (Int _ | Float _ | Enum _ | Tuple _) -> -1
  | Int _, (Float _ | Enum _ | Tuple _) -> -1
  | Float _, (Enum _ | Tuple _) -> -1
  | Enum _, Tuple _ -> -1
  | Int _, Bool _ -> 1
  | Float _, (Bool _ | Int _) -> 1
  | Enum _, (Bool _ | Int _ | Float _) -> 1
  | Tuple _, (Bool _ | Int _ | Float _ | Enum _) -> 1

let rec pp ppf = function
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Enum (_, lit) -> Format.pp_print_string ppf lit
  | Tuple vs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      vs

let to_string v = Format.asprintf "%a" pp v

let equal_message m1 m2 =
  match m1, m2 with
  | Absent, Absent -> true
  | Present a, Present b -> equal a b
  | (Absent | Present _), _ -> false

let pp_message ppf = function
  | Absent -> Format.pp_print_string ppf "-"
  | Present v -> pp ppf v

let message_to_string m = Format.asprintf "%a" pp_message m

(* Numeric promotion: Int op Int -> Int, any Float -> Float. *)
let numeric2 name int_op float_op a b =
  match a, b with
  | Int x, Int y -> Int (int_op x y)
  | Float x, Float y -> Float (float_op x y)
  | Int x, Float y -> Float (float_op (float_of_int x) y)
  | Float x, Int y -> Float (float_op x (float_of_int y))
  | (Bool _ | Enum _ | Tuple _), _ | _, (Bool _ | Enum _ | Tuple _) ->
    type_error "%s: non-numeric operands %a, %a" name pp a pp b

let add = numeric2 "add" ( + ) ( +. )
let sub = numeric2 "sub" ( - ) ( -. )
let mul = numeric2 "mul" ( * ) ( *. )

let div a b =
  match a, b with
  | Int _, Int 0 -> raise Division_by_zero
  | _ -> numeric2 "div" ( / ) ( /. ) a b

let modulo a b =
  match a, b with
  | Int _, Int 0 -> raise Division_by_zero
  | Int x, Int y -> Int (x mod y)
  | _ -> type_error "mod: non-integer operands %a, %a" pp a pp b

let neg = function
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | (Bool _ | Enum _ | Tuple _) as v -> type_error "neg: non-numeric %a" pp v

let abs = function
  | Int x -> Int (Stdlib.abs x)
  | Float x -> Float (Float.abs x)
  | (Bool _ | Enum _ | Tuple _) as v -> type_error "abs: non-numeric %a" pp v

let min_v = numeric2 "min" Stdlib.min Float.min
let max_v = numeric2 "max" Stdlib.max Float.max

let truth = function
  | Bool b -> b
  | (Int _ | Float _ | Enum _ | Tuple _) as v ->
    type_error "expected bool, got %a" pp v

let logical_and a b = Bool (truth a && truth b)
let logical_or a b = Bool (truth a || truth b)
let logical_not a = Bool (not (truth a))

let to_float = function
  | Int x -> float_of_int x
  | Float x -> x
  | (Bool _ | Enum _ | Tuple _) as v -> type_error "expected number, got %a" pp v

let to_int = function
  | Int x -> x
  | (Bool _ | Float _ | Enum _ | Tuple _) as v ->
    type_error "expected int, got %a" pp v

let cmp name op a b =
  match a, b with
  | (Int _ | Float _), (Int _ | Float _) -> Bool (op (to_float a) (to_float b))
  | (Bool _ | Enum _ | Tuple _), _ | _, (Bool _ | Enum _ | Tuple _) ->
    type_error "%s: non-numeric operands %a, %a" name pp a pp b

let lt = cmp "lt" ( < )
let le = cmp "le" ( <= )
let gt = cmp "gt" ( > )
let ge = cmp "ge" ( >= )
let eq a b = Bool (equal a b)
let ne a b = Bool (not (equal a b))
