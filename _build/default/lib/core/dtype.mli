(** Abstract data types of the FAA/FDA levels.

    FAA/FDA models use abstract ("physical") types; the LA level later
    refines them into implementation types (see {!module:Automode_la}
    [Impl_type]).  Enumerations are declared once per model and referred
    to by name. *)

type enum_decl = {
  enum_name : string;
  literals : string list;  (** in declaration order, all distinct *)
}

type t =
  | Tbool
  | Tint
  | Tfloat
  | Tenum of enum_decl
  | Ttuple of t list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val enum : string -> string list -> t
(** [enum name lits] declares an enumeration type.
    @raise Invalid_argument on empty or duplicated literal lists. *)

val enum_value : t -> string -> Value.t
(** [enum_value ty lit] is the enum value [lit] of [ty].
    @raise Invalid_argument if [ty] is not an enum or [lit] not a literal. *)

val is_numeric : t -> bool
(** [Tint] and [Tfloat]. *)

val type_of_value : Value.t -> t
(** Structural type of a runtime value.  Enum values map to an enum type
    with only their own literal known; use {!value_has_type} for checking
    against declared enums. *)

val value_has_type : Value.t -> t -> bool
(** [value_has_type v ty] checks [v] against [ty], resolving enum literals
    against the declared literal list. *)

val default_value : t -> Value.t
(** A canonical initial value: [false], [0], [0.], first literal, or the
    tuple of defaults. *)

val compatible : src:t -> dst:t -> bool
(** Channel-connection compatibility: equal types, or numeric widening
    [Tint] -> [Tfloat]. *)
