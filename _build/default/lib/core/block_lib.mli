(** Library of pure discrete-time functions callable from the base
    language via [Expr.Call] (paper Sec. 3.2: "it is possible to define
    adequate block libraries for discrete-time computations").

    All functions here are stateless; stateful standard blocks (PID,
    ramp limiter, debouncer, hysteresis) are provided as prebuilt
    components in {!Stdblocks}, built from [Expr.Pre]. *)

exception Unknown_function of string
exception Arity_error of string

val eval : string -> Value.t list -> Value.t
(** [eval name args] applies the library function.
    @raise Unknown_function on unknown names.
    @raise Arity_error on wrong argument counts.
    @raise Value.Type_error on ill-typed arguments.

    Available functions:
    - ["add" | "sub" | "mul" | "div" | "min" | "max"] — binary numeric;
    - ["abs" | "sign" | "sqrt" | "round" | "floor" | "ceil"] — unary
      numeric (the last four return float);
    - ["limit"] [x lo hi] — clamp [x] into [lo, hi];
    - ["deadband"] [x w] — zero inside [-w, w], else [x];
    - ["select"] [b x y] — [x] if [b] else [y];
    - ["avg2"] [x y] — arithmetic mean (float);
    - ["interp1"] [x x0 y0 x1 y1] — linear interpolation (float). *)

val arity : string -> int option
(** Argument count of a known function, [None] for unknown names. *)

val result_type : string -> Dtype.t list -> (Dtype.t, string) result
(** Static typing rule of a library function applied to argument types. *)

val names : string list
(** All library function names. *)
