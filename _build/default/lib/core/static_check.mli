(** Whole-model static analysis: the consistency guarantee of the
    coherent meta-model (paper Sec. 3: "Notations and underlying models
    have to be well-integrated to ensure consistency between different
    abstractions").

    Aggregates, over every component of a hierarchy:
    - structural network well-formedness ({!Network.check}),
    - causality of every DFD ({!Causality}),
    - machine well-formedness ({!Std_machine.check}, {!Mtd.check}),
    - {e expression typing}: every [B_exprs] output, STD/MTD guard and
      action is type-checked ({!Expr.typecheck}) against the declared
      port types; results must be compatible with the declared output
      type.  Expressions referencing dynamically typed (untyped) ports
      are skipped — DFD ports may be dynamically typed (paper Sec. 3.2);
    - {e clock consistency}: every output expression's inferred clock
      ({!Expr.clock_of}) must equal the declared output port clock
      (warning when it differs — refinement may still insert adapters).

    Guards must be [bool]; STD updates must match the variable's
    initial-value type. *)

type issue = {
  at : string;                        (** hierarchical component path *)
  severity : [ `Error | `Warning ];
  msg : string;
}

val pp_issue : Format.formatter -> issue -> unit

val component : Model.component -> issue list
(** All issues of the hierarchy rooted at the component. *)

val model : Model.model -> issue list

val errors : issue list -> string list
(** Messages of the [`Error] issues. *)

val summary : issue list -> string
(** e.g. ["2 errors, 3 warnings"]. *)
