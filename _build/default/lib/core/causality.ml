type loop = string list

let instantaneous_edges (net : Model.network) =
  List.filter_map
    (fun (ch : Model.channel) ->
      match ch.ch_src.ep_comp, ch.ch_dst.ep_comp with
      | Some src, Some dst when not ch.ch_delayed -> Some (src, dst)
      | Some _, Some _ | None, _ | _, None -> None)
    net.net_channels

(* Tarjan's strongly connected components over the component graph. *)
let sccs nodes edges =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let result = ref [] in
  let successors n =
    List.filter_map (fun (a, b) -> if String.equal a n then Some b else None)
      edges
  in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (Stdlib.min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w && Hashtbl.find on_stack w then
          Hashtbl.replace lowlink v
            (Stdlib.min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      result := pop [] :: !result
    end
  in
  List.iter (fun n -> if not (Hashtbl.mem index n) then strongconnect n) nodes;
  List.rev !result

let cyclic_sccs (net : Model.network) =
  let nodes = List.map (fun (c : Model.component) -> c.comp_name) net.net_components in
  let edges = instantaneous_edges net in
  let has_self_loop n = List.exists (fun (a, b) -> String.equal a n && String.equal b n) edges in
  List.filter
    (fun scc ->
      match scc with
      | [] -> false
      | [ n ] -> has_self_loop n
      | _ :: _ :: _ -> true)
    (sccs nodes edges)

let check net =
  match cyclic_sccs net with
  | [] -> Ok ()
  | loops ->
    Error
      (List.sort
         (fun a b -> Int.compare (List.length a) (List.length b))
         loops)

let evaluation_order (net : Model.network) =
  match cyclic_sccs net with
  | _ :: _ as loops ->
    Error
      (List.sort (fun a b -> Int.compare (List.length a) (List.length b)) loops)
  | [] ->
    (* Kahn's algorithm, preferring declaration order among ready nodes. *)
    let edges = instantaneous_edges net in
    let nodes =
      List.map (fun (c : Model.component) -> c.comp_name) net.net_components
    in
    let rec go order remaining edges =
      match remaining with
      | [] -> List.rev order
      | _ ->
        let ready =
          List.find_opt
            (fun n ->
              not
                (List.exists
                   (fun (_, b) -> String.equal b n)
                   edges))
            remaining
        in
        (match ready with
         | None -> assert false (* acyclic by the SCC check above *)
         | Some n ->
           let remaining =
             List.filter (fun m -> not (String.equal m n)) remaining
           in
           let edges =
             List.filter (fun (a, _) -> not (String.equal a n)) edges
           in
           go (n :: order) remaining edges)
    in
    Ok (go [] nodes edges)

let check_recursive (comp : Model.component) =
  let offending = ref [] in
  Model.iter_components
    (fun path (c : Model.component) ->
      match c.comp_behavior with
      | Model.B_dfd net ->
        (match check net with
         | Ok () -> ()
         | Error loops ->
           List.iter
             (fun loop -> offending := (path @ [ c.comp_name ], loop) :: !offending)
             loops)
      | Model.B_ssd _ | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _
      | Model.B_unspecified -> ())
    comp;
  List.rev !offending
