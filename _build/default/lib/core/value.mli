(** Runtime data values and messages of the AutoMoDe operational model.

    Following the paper's Sec. 2, every channel at every discrete clock
    tick carries a {!type:message}: either an explicit {!type:t} value or
    the absence marker ["-"] ({!Absent}).  Event-triggered behavior is
    modeled by reacting to the presence or absence of messages. *)

type t =
  | Bool of bool
  | Int of int
  | Float of float
  | Enum of string * string  (** [Enum (type_name, literal)] *)
  | Tuple of t list

type message =
  | Absent      (** the "-" (tick) value: no message this tick *)
  | Present of t

exception Type_error of string
(** Raised by the arithmetic/logic helpers on ill-typed operands. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val equal_message : message -> message -> bool
val pp_message : Format.formatter -> message -> unit
(** Prints [Absent] as ["-"], mirroring the paper's Fig. 1. *)

val message_to_string : message -> string

(** {1 Numeric and logic helpers}

    Binary numeric operations promote [Int] to [Float] when the operands
    are mixed.  All helpers raise {!Type_error} on unsupported operand
    types. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero on integer division by zero. *)

val modulo : t -> t -> t
val neg : t -> t
val abs : t -> t
val min_v : t -> t -> t
val max_v : t -> t -> t
val logical_and : t -> t -> t
val logical_or : t -> t -> t
val logical_not : t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t
val eq : t -> t -> t
val ne : t -> t -> t

val truth : t -> bool
(** [truth v] is the boolean content of [v]. @raise Type_error otherwise. *)

val to_float : t -> float
(** Numeric content as float. @raise Type_error on non-numerics. *)

val to_int : t -> int
(** Integer content. @raise Type_error on anything but [Int]. *)
