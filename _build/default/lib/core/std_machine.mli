(** Operations on State Transition Diagrams (paper Sec. 3.2).

    STDs are extended finite state machines similar to Statecharts, with
    syntactic restrictions excluding the semantic ambiguities of some
    Statecharts dialects (no inter-level transitions, no implicit
    priorities: transitions leaving the same state must carry distinct
    explicit priorities).

    Step semantics: at a tick, the enabled transition of the current
    state with the highest priority (smallest number) fires; it emits the
    declared output messages and updates the state variables.  When no
    transition is enabled, the machine stutters: all outputs are absent
    and the state is unchanged. *)

type state = {
  current : string;
  var_values : (string * Value.t) list;
}

val init : Model.std -> state

exception Step_error of string

val step :
  ?schedule:Clock.schedule -> tick:int -> env:Expr.env -> Model.std ->
  state -> (string * Value.message) list * state
(** One synchronous step.  Guards and right-hand sides see the input
    messages through [env] and the state variables as always-present
    values.  @raise Step_error on evaluation failures or unknown
    variables. *)

val check : Model.std -> (unit, string list) result
(** Structural well-formedness: initial state declared, transition
    endpoints declared, guards/updates reference only declared variables
    as assignment targets, distinct state names, and {e determinism}
    (distinct priorities among transitions leaving the same state).
    Guards must not contain [Pre]/[Current] (state belongs in declared
    variables). *)

val reachable_states : Model.std -> string list
(** States reachable from the initial state over the transition graph
    (guards ignored), in visit order. *)

val deterministic : Model.std -> bool
(** True iff transitions leaving each state have pairwise distinct
    priorities. *)

val product : Model.std -> Model.std -> Model.std
(** Synchronous parallel composition (the *charts-style composition of
    FSMs the paper cites [9]): states are pairs [sA_sB]; at each step
    both sides react to the same inputs — a joint transition fires when
    both guards hold, a single-side transition when only one does.
    Outputs and variable updates of joint moves are concatenated.
    Determinism of the factors is preserved (priorities are renumbered
    per product state).
    @raise Invalid_argument when the factors share output ports or
    variable names (their action spaces must be disjoint). *)

val behavior_equivalent_to_parallel :
  ticks:int -> env_at:(int -> Expr.env) -> Model.std -> Model.std -> bool
(** Oracle used by the tests: stepping {!product} equals stepping both
    factors side by side and merging their outputs, for the given input
    schedule. *)
