(** Discrete-time simulation of AutoMoDe models (paper Secs. 2, 3.1).

    The simulator executes a component (and its whole hierarchy) tick by
    tick against a global, discrete time-base.  Per tick, every flow
    carries a message or the absence value "-".

    Composition semantics:
    - {b SSD}: every channel between sibling components carries an
      implicit one-tick delay (paper Sec. 3.1); channels forwarding a
      boundary port are direct.  The initial register value is the
      channel's [ch_init] (absent if not given).
    - {b DFD}: communication is instantaneous; sub-components are
      evaluated in the topological order computed by {!Causality};
      explicitly [ch_delayed] channels read their register instead.
    - {b MTD}: strong preemption — the transition relation sees the
      current tick's inputs, then the {e target} mode's behavior runs on
      those same inputs; mode-local state uses history semantics.  If the
      MTD's component declares an output port named ["mode"], the current
      mode is emitted on it as an enum value each tick.
    - {b STD}: see {!Std_machine.step}.
    - {b Unspecified} behavior emits only absent messages (adequate for
      FAA-level prototype simulation of incomplete models). *)

exception Sim_error of string

type comp_state
(** Run-time state of a component instance (registers, FSM states,
    current modes, channel delay registers — recursively). *)

val init : Model.component -> comp_state
(** Initial state.  @raise Sim_error on instantaneous loops anywhere in
    the hierarchy (the causality check runs up front). *)

val step :
  ?schedule:Clock.schedule -> tick:int ->
  inputs:(string -> Value.message) -> Model.component -> comp_state ->
  (string * Value.message) list * comp_state
(** One synchronous step: input messages in, output messages out.
    Output ports with no message this tick are reported [Absent].
    @raise Sim_error on run-time evaluation failures. *)

type input_fn = int -> (string * Value.message) list
(** Stimulus: the input messages offered at each tick (unlisted input
    ports are absent). *)

val run :
  ?schedule:Clock.schedule -> ticks:int -> inputs:input_fn ->
  Model.component -> Trace.t
(** Simulate [ticks] ticks and record a trace over all boundary input
    and output ports of the component. *)

val constant_inputs : (string * Value.t) list -> input_fn
(** The stimulus that offers the same present values every tick. *)

val no_inputs : input_fn
(** The empty stimulus. *)

(** {1 Compiled simulation}

    {!step} resolves channels and components by name on every tick; for
    long runs, {!compile} precomputes the routing (driving channel per
    input port, evaluation order, boundary collection) once.  Compiled
    and interpreted simulation produce identical traces (asserted in the
    test-suite); the speedup is measured by the bench harness. *)

type compiled

val compile : Model.component -> compiled
(** @raise Sim_error on instantaneous loops (as {!init}). *)

val compiled_step :
  ?schedule:Clock.schedule -> tick:int ->
  inputs:(string -> Value.message) -> compiled -> comp_state ->
  (string * Value.message) list * comp_state

val compiled_init : compiled -> comp_state

val run_compiled :
  ?schedule:Clock.schedule -> ticks:int -> inputs:input_fn -> compiled ->
  Trace.t
(** Like {!run}, over a precompiled component. *)
