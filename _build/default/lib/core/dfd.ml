let of_network ?(ports = []) (net : Model.network) =
  Model.component net.net_name ~ports ~behavior:(Model.B_dfd net)

let check ~enclosing (net : Model.network) =
  let structural = Network.check ~require_static_types:false ~enclosing net in
  let causality =
    match Causality.check net with
    | Ok () -> []
    | Error loops ->
      List.map
        (fun loop ->
          { Network.issue_severity = `Error;
            issue_msg =
              Printf.sprintf "instantaneous loop: %s"
                (String.concat " -> " loop) })
        loops
  in
  structural @ causality

let check_component (comp : Model.component) =
  let issues = ref [] in
  Model.iter_components
    (fun path (c : Model.component) ->
      match c.comp_behavior with
      | Model.B_dfd net ->
        let here = check ~enclosing:c net in
        let prefix = String.concat "." (path @ [ c.comp_name ]) in
        List.iter
          (fun (i : Network.issue) ->
            issues :=
              { i with Network.issue_msg = prefix ^ ": " ^ i.Network.issue_msg }
              :: !issues)
          here
      | Model.B_ssd _ | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _
      | Model.B_unspecified -> ())
    comp;
  List.rev !issues

let flatten net = Network.flatten ~prefix_sep:"_" net

let block_of_expr ~name ~inputs ?(out = "out") ?out_type expr =
  let in_ports =
    List.map (fun (n, ty) -> Model.port ?ty Model.In n) inputs
  in
  let out_port = Model.port ?ty:out_type Model.Out out in
  Model.component name
    ~ports:(in_ports @ [ out_port ])
    ~behavior:(Model.B_exprs [ (out, expr) ])

let wire ?delayed ?init name (comp_a, port_a) (comp_b, port_b) =
  let ep comp port : Model.endpoint =
    if String.equal comp "" then Model.boundary port else Model.at comp port
  in
  Model.channel ?delayed ?init ~name (ep comp_a port_a) (ep comp_b port_b)
