type feature = string

type condition =
  | Ftrue
  | Fvar of feature
  | Fnot of condition
  | Fand of condition * condition
  | For of condition * condition

let rec pp_condition ppf = function
  | Ftrue -> Format.pp_print_string ppf "true"
  | Fvar f -> Format.pp_print_string ppf f
  | Fnot c -> Format.fprintf ppf "(not %a)" pp_condition c
  | Fand (a, b) ->
    Format.fprintf ppf "(%a and %a)" pp_condition a pp_condition b
  | For (a, b) ->
    Format.fprintf ppf "(%a or %a)" pp_condition a pp_condition b

let rec eval assignment = function
  | Ftrue -> true
  | Fvar f -> (match List.assoc_opt f assignment with Some b -> b | None -> false)
  | Fnot c -> not (eval assignment c)
  | Fand (a, b) -> eval assignment a && eval assignment b
  | For (a, b) -> eval assignment a || eval assignment b

let features_of condition =
  let rec go acc = function
    | Ftrue -> acc
    | Fvar f -> if List.mem f acc then acc else f :: acc
    | Fnot c -> go acc c
    | Fand (a, b) | For (a, b) -> go (go acc a) b
  in
  List.rev (go [] condition)

type t = {
  base : Model.model;
  presence : (string * condition) list;
}

let make ?(presence = []) base = { base; presence }

let features vm =
  List.concat_map (fun (_, c) -> features_of c) vm.presence
  |> List.sort_uniq String.compare

exception Not_variant_model of string

let root_network vm =
  match vm.base.Model.model_root.comp_behavior with
  | Model.B_ssd net | Model.B_dfd net -> net
  | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified ->
    raise (Not_variant_model "root component has no network behavior")

let check vm =
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let net =
    try Some (root_network vm) with Not_variant_model msg -> add "%s" msg; None
  in
  (match net with
   | None -> ()
   | Some net ->
     List.iter
       (fun (name, _) ->
         if Model.find_component net name = None then
           add "presence condition on unknown component %s" name)
       vm.presence;
     (* a conditional provider feeding an unconditional consumer *)
     let conditional name =
       match List.assoc_opt name vm.presence with
       | Some Ftrue | None -> false
       | Some _ -> true
     in
     List.iter
       (fun (ch : Model.channel) ->
         match ch.ch_src.ep_comp, ch.ch_dst.ep_comp with
         | Some src, Some dst when conditional src && not (conditional dst) ->
           add
             "unconditional component %s depends on optional %s (channel %s)"
             dst src ch.ch_name
         | _, _ -> ())
       net.net_channels);
  List.rev !problems

let configure vm ~assignment =
  let net = root_network vm in
  let enabled name =
    match List.assoc_opt name vm.presence with
    | Some c -> eval assignment c
    | None -> true
  in
  let components =
    List.filter
      (fun (c : Model.component) -> enabled c.comp_name)
      net.net_components
  in
  let endpoint_ok (ep : Model.endpoint) =
    match ep.ep_comp with None -> true | Some c -> enabled c
  in
  let channels =
    List.filter
      (fun (ch : Model.channel) -> endpoint_ok ch.ch_src && endpoint_ok ch.ch_dst)
      net.net_channels
  in
  let net' = { net with Model.net_components = components; net_channels = channels } in
  let behavior =
    match vm.base.Model.model_root.comp_behavior with
    | Model.B_ssd _ -> Model.B_ssd net'
    | Model.B_dfd _ -> Model.B_dfd net'
    | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified ->
      assert false
  in
  { vm.base with
    Model.model_root = { vm.base.Model.model_root with comp_behavior = behavior } }

let all_assignments features =
  let rec go = function
    | [] -> [ [] ]
    | f :: rest ->
      let tails = go rest in
      List.map (fun t -> (f, true) :: t) tails
      @ List.map (fun t -> (f, false) :: t) tails
  in
  go features

let configurations vm =
  let fs = features vm in
  List.map
    (fun assignment ->
      let label =
        String.concat ""
          (List.map
             (fun (f, b) -> (if b then "+" else "-") ^ f)
             assignment)
      in
      let label = if String.equal label "" then "base" else label in
      (label, configure vm ~assignment))
    (all_assignments fs)
