let port_sig (p : Model.port) =
  let dir = match p.port_dir with Model.In -> ">" | Model.Out -> "<" in
  let ty =
    match p.port_type with
    | Some t -> ":" ^ Dtype.to_string t
    | None -> ""
  in
  let clk =
    match p.port_clock with
    | Clock.Base -> ""
    | c -> "@" ^ Clock.to_string c
  in
  let res =
    match p.port_resource with Some r -> "[" ^ r ^ "]" | None -> ""
  in
  Printf.sprintf "%s%s%s%s%s" dir p.port_name ty clk res

let box ppf ~title lines =
  let width =
    List.fold_left
      (fun acc s -> Stdlib.max acc (String.length s))
      (String.length title) lines
  in
  let hr = String.make (width + 2) '-' in
  Format.fprintf ppf "+%s+@\n" hr;
  Format.fprintf ppf "| %-*s |@\n" width title;
  if lines <> [] then Format.fprintf ppf "+%s+@\n" hr;
  List.iter (fun s -> Format.fprintf ppf "| %-*s |@\n" width s) lines;
  Format.fprintf ppf "+%s+@\n" hr

let ep_str (ep : Model.endpoint) =
  match ep.ep_comp with
  | None -> "." ^ ep.ep_port
  | Some c -> c ^ "." ^ ep.ep_port

let channel_line (ch : Model.channel) =
  let arrow = if ch.ch_delayed then "--[z]-->" else "------->" in
  Printf.sprintf "  %-28s %s %-28s (%s)" (ep_str ch.ch_src) arrow
    (ep_str ch.ch_dst) ch.ch_name

let network ~kind ppf (net : Model.network) =
  Format.fprintf ppf "%s %s@\n" kind net.net_name;
  List.iter
    (fun (c : Model.component) ->
      let ports = List.map port_sig c.comp_ports in
      let title =
        Printf.sprintf "%s <%s>" c.comp_name
          (Model.behavior_kind c.comp_behavior)
      in
      box ppf ~title ports)
    net.net_components;
  if net.net_channels <> [] then begin
    Format.fprintf ppf "channels:@\n";
    List.iter
      (fun ch -> Format.fprintf ppf "%s@\n" (channel_line ch))
      net.net_channels
  end

let mtd ppf (m : Model.mtd) =
  Format.fprintf ppf "MTD %s@\n" m.mtd_name;
  Format.fprintf ppf "modes:@\n";
  List.iter
    (fun (mode : Model.mode) ->
      let mark = if String.equal mode.mode_name m.mtd_initial then "*" else " " in
      Format.fprintf ppf " %s %s <%s>@\n" mark mode.mode_name
        (Model.behavior_kind mode.mode_behavior))
    m.mtd_modes;
  Format.fprintf ppf "transitions:@\n";
  List.iter
    (fun (t : Model.mtd_transition) ->
      Format.fprintf ppf "  %-18s -> %-18s when %s  (prio %d)@\n" t.mt_src
        t.mt_dst (Expr.to_string t.mt_guard) t.mt_priority)
    m.mtd_transitions

let std ppf (s : Model.std) =
  Format.fprintf ppf "STD %s@\n" s.std_name;
  Format.fprintf ppf "states:";
  List.iter
    (fun st ->
      let mark = if String.equal st s.std_initial then "*" else "" in
      Format.fprintf ppf " %s%s" st mark)
    s.std_states;
  Format.pp_print_newline ppf ();
  if s.std_vars <> [] then begin
    Format.fprintf ppf "vars:";
    List.iter
      (fun (v, init) -> Format.fprintf ppf " %s=%s" v (Value.to_string init))
      s.std_vars;
    Format.pp_print_newline ppf ()
  end;
  Format.fprintf ppf "transitions:@\n";
  List.iter
    (fun (t : Model.std_transition) ->
      Format.fprintf ppf "  %-14s -> %-14s when %s  (prio %d)@\n" t.st_src
        t.st_dst (Expr.to_string t.st_guard) t.st_priority;
      List.iter
        (fun (port, e) ->
          Format.fprintf ppf "      emit %s = %s@\n" port (Expr.to_string e))
        t.st_outputs;
      List.iter
        (fun (v, e) ->
          Format.fprintf ppf "      set  %s = %s@\n" v (Expr.to_string e))
        t.st_updates)
    s.std_transitions

let rec component ppf (c : Model.component) =
  let ports = List.map port_sig c.comp_ports in
  box ppf ~title:(c.comp_name ^ " <" ^ Model.behavior_kind c.comp_behavior ^ ">")
    ports;
  match c.comp_behavior with
  | Model.B_ssd net ->
    network ~kind:"SSD" ppf net;
    List.iter (component ppf) net.net_components
  | Model.B_dfd net ->
    network ~kind:"DFD" ppf net;
    List.iter
      (fun (sub : Model.component) ->
        match sub.comp_behavior with
        | Model.B_dfd _ | Model.B_ssd _ | Model.B_mtd _ | Model.B_std _ ->
          component ppf sub
        | Model.B_exprs _ | Model.B_unspecified -> ())
      net.net_components
  | Model.B_mtd m ->
    mtd ppf m;
    List.iter
      (fun (mode : Model.mode) ->
        match mode.mode_behavior with
        | Model.B_dfd net -> network ~kind:"DFD" ppf net
        | Model.B_ssd net -> network ~kind:"SSD" ppf net
        | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _
        | Model.B_unspecified -> ())
      m.mtd_modes
  | Model.B_std s -> std ppf s
  | Model.B_exprs outs ->
    List.iter
      (fun (port, e) ->
        Format.fprintf ppf "  %s = %s@\n" port (Expr.to_string e))
      outs
  | Model.B_unspecified -> ()

let component_to_string c = Format.asprintf "%a" component c
