type issue = {
  at : string;
  severity : [ `Error | `Warning ];
  msg : string;
}

let pp_issue ppf i =
  let tag = match i.severity with `Error -> "error" | `Warning -> "warning" in
  Format.fprintf ppf "%s: %s: %s" tag i.at i.msg

let errors issues =
  List.filter_map
    (fun i -> match i.severity with `Error -> Some i.msg | `Warning -> None)
    issues

let summary issues =
  let n s = List.length (List.filter (fun i -> i.severity = s) issues) in
  Printf.sprintf "%d errors, %d warnings" (n `Error) (n `Warning)

(* Typing/clock environments over a component's input ports (plus extra
   bindings for STD state variables). *)
let port_tenv ?(extra = []) (ports : Model.port list) name =
  match List.assoc_opt name extra with
  | Some ty -> Some ty
  | None ->
    Option.bind
      (List.find_opt
         (fun (p : Model.port) ->
           p.Model.port_dir = Model.In && String.equal p.port_name name)
         ports)
      (fun p -> p.Model.port_type)

let port_cenv (ports : Model.port list) name =
  Option.map
    (fun (p : Model.port) -> p.Model.port_clock)
    (List.find_opt
       (fun (p : Model.port) ->
         p.Model.port_dir = Model.In && String.equal p.port_name name)
       ports)

(* An expression is statically checkable iff every referenced port is
   statically typed (dynamic ports are legal in DFDs). *)
let fully_typed ~tenv e =
  List.for_all (fun v -> tenv v <> None) (Expr.free_vars e)

let check_expr ~add ~ports ?(extra = []) ~context ?(expect : Dtype.t option)
    e =
  let tenv = port_tenv ~extra ports in
  if fully_typed ~tenv e then
    match Expr.typecheck ~tenv e with
    | Error msg -> add `Error (Printf.sprintf "%s: %s" context msg)
    | Ok ty ->
      (match expect with
       | Some want when not (Dtype.compatible ~src:ty ~dst:want) ->
         add `Error
           (Printf.sprintf "%s: computes %s but %s is declared" context
              (Dtype.to_string ty) (Dtype.to_string want))
       | Some _ | None -> ())

let check_guard ~add ~ports ?(extra = []) ~context g =
  let tenv = port_tenv ~extra ports in
  if fully_typed ~tenv g then
    match Expr.typecheck ~tenv g with
    | Error msg -> add `Error (Printf.sprintf "%s: %s" context msg)
    | Ok Dtype.Tbool -> ()
    | Ok ty ->
      add `Error
        (Printf.sprintf "%s: guard has type %s, not bool" context
           (Dtype.to_string ty))

let check_output_clock ~add ~ports ~context port e =
  match
    List.find_opt
      (fun (p : Model.port) ->
        p.Model.port_dir = Model.Out && String.equal p.port_name port)
      ports
  with
  | None ->
    add `Error (Printf.sprintf "%s: assigns undeclared output %s" context port)
  | Some p ->
    (* only check when every referenced port has a known clock *)
    let cenv = port_cenv ports in
    if List.for_all (fun v -> cenv v <> None) (Expr.free_vars e) then
      match Expr.clock_of ~cenv e with
      | Error msg -> add `Error (Printf.sprintf "%s: %s" context msg)
      | Ok c ->
        if not (Clock.equal c p.Model.port_clock) then
          add `Warning
            (Printf.sprintf "%s: output %s computed on clock %s, declared %s"
               context port (Clock.to_string c)
               (Clock.to_string p.Model.port_clock))

let rec check_behavior ~add ~(ports : Model.port list)
    (b : Model.behavior) =
  match b with
  | Model.B_unspecified -> ()
  | Model.B_exprs outs ->
    List.iter
      (fun (port, e) ->
        let expect =
          Option.bind
            (List.find_opt
               (fun (p : Model.port) ->
                 p.Model.port_dir = Model.Out && String.equal p.port_name port)
               ports)
            (fun p -> p.Model.port_type)
        in
        check_expr ~add ~ports ~context:("output " ^ port) ?expect e;
        check_output_clock ~add ~ports ~context:"clock" port e)
      outs
  | Model.B_std std ->
    (match Std_machine.check std with
     | Ok () -> ()
     | Error msgs -> List.iter (fun m -> add `Error ("STD: " ^ m)) msgs);
    let extra =
      List.map (fun (v, init) -> (v, Dtype.type_of_value init)) std.std_vars
    in
    List.iter
      (fun (t : Model.std_transition) ->
        let context = Printf.sprintf "STD %s->%s" t.st_src t.st_dst in
        check_guard ~add ~ports ~extra ~context t.st_guard;
        List.iter
          (fun (port, e) ->
            let expect =
              Option.bind
                (List.find_opt
                   (fun (p : Model.port) ->
                     p.Model.port_dir = Model.Out
                     && String.equal p.port_name port)
                   ports)
                (fun p -> p.Model.port_type)
            in
            check_expr ~add ~ports ~extra
              ~context:(context ^ " emit " ^ port)
              ?expect e)
          t.st_outputs;
        List.iter
          (fun (v, e) ->
            match List.assoc_opt v extra with
            | None -> () (* undeclared: already flagged by Std_machine.check *)
            | Some ty ->
              check_expr ~add ~ports ~extra
                ~context:(context ^ " set " ^ v)
                ~expect:ty e)
          t.st_updates)
      std.std_transitions
  | Model.B_mtd mtd ->
    (match Mtd.check mtd with
     | Ok () -> ()
     | Error msgs -> List.iter (fun m -> add `Error ("MTD: " ^ m)) msgs);
    List.iter
      (fun (t : Model.mtd_transition) ->
        check_guard ~add ~ports
          ~context:(Printf.sprintf "MTD %s->%s" t.mt_src t.mt_dst)
          t.mt_guard)
      mtd.mtd_transitions;
    List.iter
      (fun (m : Model.mode) -> check_behavior ~add ~ports m.mode_behavior)
      mtd.mtd_modes
  | Model.B_dfd _ | Model.B_ssd _ ->
    (* networks are visited per component by [component] below *)
    ()

let component (root : Model.component) =
  let issues = ref [] in
  Model.iter_components
    (fun path (c : Model.component) ->
      let at = String.concat "." (path @ [ c.comp_name ]) in
      let add severity msg = issues := { at; severity; msg } :: !issues in
      (* structural + causality per network kind *)
      (match c.comp_behavior with
       | Model.B_dfd net ->
         List.iter
           (fun (i : Network.issue) ->
             add i.issue_severity i.issue_msg)
           (Network.check ~enclosing:c net);
         (match Causality.check net with
          | Ok () -> ()
          | Error loops ->
            List.iter
              (fun loop ->
                add `Error
                  (Printf.sprintf "instantaneous loop: %s"
                     (String.concat " -> " loop)))
              loops)
       | Model.B_ssd net ->
         List.iter
           (fun (i : Network.issue) -> add i.issue_severity i.issue_msg)
           (Network.check ~require_static_types:true ~enclosing:c net)
       | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _
       | Model.B_unspecified -> ());
      check_behavior ~add ~ports:c.comp_ports c.comp_behavior)
    root;
  List.rev !issues

let model (m : Model.model) = component m.Model.model_root
