let of_network ?(ports = []) (net : Model.network) =
  Model.component net.net_name ~ports ~behavior:(Model.B_ssd net)

let check ~enclosing net =
  Network.check ~require_static_types:true ~enclosing net

let check_component (comp : Model.component) =
  let issues = ref [] in
  Model.iter_components
    (fun path (c : Model.component) ->
      match c.comp_behavior with
      | Model.B_ssd net ->
        let here = check ~enclosing:c net in
        let prefix = String.concat "." (path @ [ c.comp_name ]) in
        List.iter
          (fun (i : Network.issue) ->
            issues :=
              { i with Network.issue_msg = prefix ^ ": " ^ i.Network.issue_msg }
              :: !issues)
          here
      | Model.B_dfd _ | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _
      | Model.B_unspecified -> ())
    comp;
  List.rev !issues

let dissolve_top (comp : Model.component) =
  match comp.comp_behavior with
  | Model.B_ssd net ->
    let flat = Network.flatten ~prefix_sep:"_" net in
    { comp with comp_behavior = Model.B_ssd flat }
  | Model.B_dfd net ->
    let flat = Network.flatten ~prefix_sep:"_" net in
    { comp with comp_behavior = Model.B_dfd flat }
  | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified ->
    comp
