(** System Structure Diagrams (paper Sec. 3.1).

    SSDs describe the high-level architectural decomposition of a system:
    networks of typed components with statically typed message-passing
    interfaces, connected by explicit channels.  Components are
    recursively defined by other SSDs or by behavioral notations; on the
    FAA level leaving behavior unspecified is perfectly adequate.

    Each SSD-level channel between components introduces a one-tick
    message delay, to facilitate later design transformations such as
    deployment. *)

val of_network :
  ?ports:Model.port list -> Model.network -> Model.component
(** Wrap a network as a component whose behavior is [B_ssd]. *)

val check :
  enclosing:Model.component -> Model.network -> Network.issue list
(** SSD well-formedness: the {!Network.check} conditions with static
    typing required on all sub-component ports. *)

val check_component : Model.component -> Network.issue list
(** Run {!check} on every SSD network in the hierarchy of the component
    (including those in MTD modes), prefixing messages with the path. *)

val dissolve_top : Model.component -> Model.component
(** Dissolve the topmost SSD hierarchy levels into one flat network
    (used when transitioning to a LA-level CCD, paper Sec. 3.3).  Inner
    channel delays are preserved by marking the flattened channels
    [ch_delayed].  Components whose behavior is not an SSD/DFD are kept
    atomic. *)
