(** Hierarchical identifiers.

    Model elements (components, ports, channels, modes, ...) are named by
    dot-separated paths, e.g. ["EngineController.Throttle.posIn"].  A path
    is a non-empty list of segments; each segment is a non-empty string of
    letters, digits, ['_'] and ['-'].  Paths are ordered lexicographically
    segment by segment. *)

type t
(** A hierarchical identifier. *)

exception Invalid of string
(** Raised by the constructors on malformed segments. *)

val v : string -> t
(** [v seg] is the single-segment identifier [seg].
    @raise Invalid if [seg] is empty or contains ['.'] or whitespace. *)

val of_path : string list -> t
(** [of_path segs] builds an identifier from explicit segments.
    @raise Invalid if [segs] is empty or any segment is malformed. *)

val of_string : string -> t
(** [of_string s] parses a dot-separated path.
    @raise Invalid on empty or malformed input. *)

val to_string : t -> string
(** Dot-separated rendering. *)

val segments : t -> string list
(** The path segments, outermost first. *)

val child : t -> string -> t
(** [child id seg] appends one segment. @raise Invalid on a bad segment. *)

val append : t -> t -> t
(** [append a b] concatenates the two paths. *)

val basename : t -> string
(** The last segment. *)

val parent : t -> t option
(** The path without its last segment; [None] for single-segment paths. *)

val depth : t -> int
(** Number of segments. *)

val is_prefix : t -> t -> bool
(** [is_prefix a b] is [true] iff [a]'s segments are a prefix of [b]'s. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
