let rec size : Expr.t -> int = function
  | Expr.Const _ | Expr.Var _ | Expr.Is_present _ -> 1
  | Expr.Unop (_, e) | Expr.Pre (_, e) | Expr.When (e, _) | Expr.Current (_, e)
    -> 1 + size e
  | Expr.Binop (_, a, b) -> 1 + size a + size b
  | Expr.If (c, a, b) -> 1 + size c + size a + size b
  | Expr.Call (_, args) ->
    1 + List.fold_left (fun acc a -> acc + size a) 0 args

(* Fold a closed operator application faithfully: on a run-time failure
   (type error, division by zero, unknown function) the term is left
   untouched so the error still happens at the original evaluation site. *)
let try_fold f original =
  try f () with
  | Value.Type_error _ | Division_by_zero | Invalid_argument _
  | Block_lib.Unknown_function _ | Block_lib.Arity_error _ ->
    original

let fold_unop op v original =
  try_fold
    (fun () ->
      Expr.Const
        (match op with
         | Expr.Neg -> Value.neg v
         | Expr.Not -> Value.logical_not v
         | Expr.Abs -> Value.abs v))
    original

let fold_binop op a b original =
  try_fold
    (fun () ->
      Expr.Const
        (match op with
         | Expr.Add -> Value.add a b
         | Expr.Sub -> Value.sub a b
         | Expr.Mul -> Value.mul a b
         | Expr.Div -> Value.div a b
         | Expr.Mod -> Value.modulo a b
         | Expr.And -> Value.logical_and a b
         | Expr.Or -> Value.logical_or a b
         | Expr.Eq -> Value.eq a b
         | Expr.Ne -> Value.ne a b
         | Expr.Lt -> Value.lt a b
         | Expr.Le -> Value.le a b
         | Expr.Gt -> Value.gt a b
         | Expr.Ge -> Value.ge a b
         | Expr.Min -> Value.min_v a b
         | Expr.Max -> Value.max_v a b))
    original

let is_zero = function
  | Value.Int 0 -> true
  | Value.Float f -> Float.equal f 0.
  | Value.Int _ | Value.Bool _ | Value.Enum _ | Value.Tuple _ -> false

let is_one = function
  | Value.Int 1 -> true
  | Value.Float f -> Float.equal f 1.
  | Value.Int _ | Value.Bool _ | Value.Enum _ | Value.Tuple _ -> false

let negated_cmp = function
  | Expr.Eq -> Some Expr.Ne
  | Expr.Ne -> Some Expr.Eq
  | Expr.Lt -> Some Expr.Ge
  | Expr.Le -> Some Expr.Gt
  | Expr.Gt -> Some Expr.Le
  | Expr.Ge -> Some Expr.Lt
  | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod | Expr.And
  | Expr.Or | Expr.Min | Expr.Max -> None

(* One bottom-up pass. *)
let rec pass (e : Expr.t) : Expr.t =
  match e with
  | Expr.Const _ | Expr.Var _ | Expr.Is_present _ -> e
  | Expr.Unop (op, a) ->
    let a = pass a in
    (match op, a with
     | _, Expr.Const v -> fold_unop op v (Expr.Unop (op, a))
     | Expr.Not, Expr.Unop (Expr.Not, inner) -> inner
     | Expr.Not, Expr.Binop (cmp, x, y) ->
       (match negated_cmp cmp with
        | Some cmp' -> Expr.Binop (cmp', x, y)
        | None -> Expr.Unop (op, a))
     | Expr.Neg, Expr.Unop (Expr.Neg, inner) -> inner
     | (Expr.Neg | Expr.Not | Expr.Abs), _ -> Expr.Unop (op, a))
  | Expr.Binop (op, a, b) ->
    let a = pass a and b = pass b in
    (match op, a, b with
     | _, Expr.Const va, Expr.Const vb ->
       fold_binop op va vb (Expr.Binop (op, a, b))
     (* neutral element on the constant side: presence follows the other
        operand either way, so dropping the constant is sound *)
     | (Expr.Add | Expr.Sub), other, Expr.Const z when is_zero z -> other
     | Expr.Add, Expr.Const z, other when is_zero z -> other
     | Expr.Mul, other, Expr.Const o when is_one o -> other
     | Expr.Mul, Expr.Const o, other when is_one o -> other
     | Expr.Div, other, Expr.Const o when is_one o -> other
     | Expr.And, other, Expr.Const (Value.Bool true) -> other
     | Expr.And, Expr.Const (Value.Bool true), other -> other
     | Expr.Or, other, Expr.Const (Value.Bool false) -> other
     | Expr.Or, Expr.Const (Value.Bool false), other -> other
     | _, _, _ -> Expr.Binop (op, a, b))
  | Expr.If (c, a, b) ->
    let c = pass c and a = pass a and b = pass b in
    (match c with
     | Expr.Const (Value.Bool true) -> a
     | Expr.Const (Value.Bool false) -> b
     | Expr.Const _ when a = b -> a
     | _ -> Expr.If (c, a, b))
  | Expr.Pre (init, a) -> Expr.Pre (init, pass a)
  | Expr.When (a, c) ->
    let a = pass a in
    (match a, c with
     | _, Clock.Base -> a
     | Expr.When (inner, c') , _ when Clock.equal c c' -> Expr.When (inner, c)
     | _, _ -> Expr.When (a, c))
  | Expr.Current (init, a) ->
    let a = pass a in
    (match a with
     | Expr.Const _ -> a (* a constant is always present: current is identity *)
     | _ -> Expr.Current (init, a))
  | Expr.Call (name, args) ->
    let args = List.map pass args in
    let all_const =
      List.filter_map
        (function Expr.Const v -> Some v | _ -> None)
        args
    in
    if List.length all_const = List.length args then
      try_fold
        (fun () -> Expr.Const (Block_lib.eval name all_const))
        (Expr.Call (name, args))
    else Expr.Call (name, args)

let expr e =
  let rec fixpoint e budget =
    let e' = pass e in
    if e' = e || budget = 0 then e' else fixpoint e' (budget - 1)
  in
  fixpoint e 16

let rec behavior (b : Model.behavior) : Model.behavior =
  match b with
  | Model.B_exprs outs ->
    Model.B_exprs (List.map (fun (port, e) -> (port, expr e)) outs)
  | Model.B_std std ->
    Model.B_std
      { std with
        Model.std_transitions =
          List.map
            (fun (t : Model.std_transition) ->
              { t with
                Model.st_guard = expr t.st_guard;
                st_outputs = List.map (fun (p, e) -> (p, expr e)) t.st_outputs;
                st_updates = List.map (fun (v, e) -> (v, expr e)) t.st_updates })
            std.Model.std_transitions }
  | Model.B_mtd mtd ->
    Model.B_mtd
      { mtd with
        Model.mtd_modes =
          List.map
            (fun (m : Model.mode) ->
              { m with Model.mode_behavior = behavior m.mode_behavior })
            mtd.Model.mtd_modes;
        mtd_transitions =
          List.map
            (fun (t : Model.mtd_transition) ->
              { t with Model.mt_guard = expr t.mt_guard })
            mtd.Model.mtd_transitions }
  | Model.B_dfd net -> Model.B_dfd (network net)
  | Model.B_ssd net -> Model.B_ssd (network net)
  | Model.B_unspecified -> Model.B_unspecified

and network (net : Model.network) : Model.network =
  { net with
    Model.net_components =
      List.map
        (fun (c : Model.component) ->
          { c with Model.comp_behavior = behavior c.comp_behavior })
        net.Model.net_components }

let component (c : Model.component) =
  { c with Model.comp_behavior = behavior c.comp_behavior }

let model (m : Model.model) =
  { m with Model.model_root = component m.Model.model_root }
