(** Prebuilt stateful standard blocks (paper Sec. 3.2: block libraries
    for discrete-time computations).

    Each constructor returns an atomic component (behavior [B_exprs])
    with input port(s) and one output port ["out"], built from the base
    language.  Feedback needed for the internal state uses [Expr.Pre],
    which is legal inside a block (the causality discipline only
    restricts feedback {e between} blocks). *)

val delay : name:string -> init:Value.t -> Model.component
(** One-tick delay of its input stream ([in] -> [out]). *)

val gain : name:string -> float -> Model.component
(** [out = k * in]. *)

val offset : name:string -> float -> Model.component
(** [out = in + k]. *)

val limiter : name:string -> lo:float -> hi:float -> Model.component
(** Saturation. *)

val rate_limiter : name:string -> max_step:float -> Model.component
(** Limits the change of the output per activation to [±max_step]. *)

val integrator : name:string -> ?init:float -> ?gain:float -> unit -> Model.component
(** Discrete accumulator: [out(t) = out(t-1) + gain * in(t)]. *)

val derivative : name:string -> Model.component
(** First difference: [out(t) = in(t) - in(t-1)] (0 at the first tick). *)

val pi_controller :
  name:string -> kp:float -> ki:float -> Model.component
(** Discrete PI controller on input ports [setpoint] and [measure]. *)

val hysteresis :
  name:string -> low:float -> high:float -> Model.component
(** Two-point (bang-bang) element: output [true] once the input exceeds
    [high], [false] once it drops below [low], holding in between. *)

val debounce : name:string -> ticks:int -> Model.component
(** Boolean debouncer: output switches only after the input has held the
    new value for [ticks] consecutive activations. *)

val sample_hold : name:string -> clock:Clock.t -> init:Value.t -> Model.component
(** Samples the input on [clock] and holds the value in between — the
    [when]/[current] pattern of the paper's Fig. 2 in one block. *)
