(** MTD -> partitionable data-flow model (paper Sec. 3.3).

    "In order to represent high-level MTDs as a network of clusters on
    the LA level, the AutoMoDe tool prototype features an algorithm to
    transform an MTD into a semantically equivalent, partitionable
    data-flow model."

    The algorithm composes the mode-port refactoring of {!Refactor} with
    clusterization: the mode {e selector}, every {e mode} block and the
    output {e multiplexer} each become a separate cluster — the smallest
    deployable units — so that different modes can be deployed to
    different tasks (or even ECUs). *)

open Automode_core
open Automode_la

exception Not_partitionable of string

val transform : ?period:int -> Model.component -> Ccd.t
(** Transform a component with MTD behavior (memoryless expression
    modes) into a CCD with [2 + #modes] clusters.  All cluster ports are
    clocked at [period] base ticks (default 1).
    @raise Not_partitionable when the component has no MTD behavior or
    the modes are not memoryless expressions (the restriction of
    {!Refactor.mtd_to_mode_port_dfd}). *)

val to_component : Ccd.t -> Model.component
(** Re-wrap for simulation ({!Ccd.to_component}), re-exported for
    equivalence checks against the original MTD component. *)
