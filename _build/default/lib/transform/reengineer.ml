open Automode_core
open Automode_ascet

type report = {
  processes : int;
  components : int;
  mtds_extracted : int;
  flags_found : string list;
  flag_conditionals : int;
  multi_flag_emitters : (string * int) list;
}

let pp_report ppf r =
  Format.fprintf ppf
    "reengineered %d processes into %d components; %d MTDs extracted@\n"
    r.processes r.components r.mtds_extracted;
  Format.fprintf ppf "mode flags: %s@\n"
    (if r.flags_found = [] then "(none)" else String.concat ", " r.flags_found);
  Format.fprintf ppf "flag conditionals in input: %d@\n" r.flag_conditionals;
  List.iter
    (fun (p, n) ->
      Format.fprintf ppf "central flag emitter: %s (%d flags)@\n" p n)
    r.multi_flag_emitters

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* ------------------------------------------------------------------ *)
(* Symbolic execution of statement bodies                             *)
(* ------------------------------------------------------------------ *)

(* Bindings from names (locals and written globals) to expressions over the
   component's input ports.  Unbound variables remain port reads. *)
type senv = (string * Expr.t) list

let rec subst (env : senv) (e : Expr.t) : Expr.t =
  match e with
  | Expr.Var name ->
    (match List.assoc_opt name env with Some bound -> bound | None -> e)
  | Expr.Const _ | Expr.Is_present _ -> e
  | Expr.Unop (op, a) -> Expr.Unop (op, subst env a)
  | Expr.Binop (op, a, b) -> Expr.Binop (op, subst env a, subst env b)
  | Expr.If (c, a, b) -> Expr.If (subst env c, subst env a, subst env b)
  | Expr.Pre (i, a) -> Expr.Pre (i, subst env a)
  | Expr.When (a, c) -> Expr.When (subst env a, c)
  | Expr.Current (i, a) -> Expr.Current (i, subst env a)
  | Expr.Call (f, args) -> Expr.Call (f, List.map (subst env) args)

let lookup_or_port env name =
  match List.assoc_opt name env with
  | Some e -> e
  | None -> Expr.var name

let rec exec_stmt (env : senv) (s : Ascet_ast.stmt) : senv =
  match s with
  | Ascet_ast.Assign (target, e) | Ascet_ast.Send (target, e) ->
    (target, subst env e) :: List.remove_assoc target env
  | Ascet_ast.If (cond, then_s, else_s) ->
    let cond' = subst env cond in
    let env_t = exec_stmts env then_s in
    let env_f = exec_stmts env else_s in
    let keys =
      List.sort_uniq String.compare (List.map fst env_t @ List.map fst env_f)
    in
    List.map
      (fun k ->
        let vt = lookup_or_port env_t k and vf = lookup_or_port env_f k in
        if vt == vf || vt = vf then (k, vt) else (k, Expr.If (cond', vt, vf)))
      keys

and exec_stmts env stmts = List.fold_left exec_stmt env stmts

(* ------------------------------------------------------------------ *)
(* White-box reengineering                                            *)
(* ------------------------------------------------------------------ *)

(* Execution order of a process at coincident activation ticks:
   (task declaration index, process declaration index). *)
let order_of (m : Ascet_ast.t) (p : Ascet_ast.process) =
  let task_idx =
    let rec idx i = function
      | [] -> max_int
      | (t : Ascet_ast.task_decl) :: rest ->
        if String.equal t.task_name p.proc_task then i else idx (i + 1) rest
    in
    idx 0 m.tasks
  in
  let proc_idx =
    let rec idx i = function
      | [] -> max_int
      | (q : Ascet_ast.process) :: rest ->
        if String.equal q.proc_name p.proc_name then i else idx (i + 1) rest
    in
    idx 0 m.processes
  in
  (task_idx, proc_idx)

let task_clock (m : Ascet_ast.t) task_name =
  match Ascet_ast.find_task m task_name with
  | Some t -> Clock.every t.period_ms Clock.Base
  | None -> unsupported "process bound to unknown task %s" task_name

let global_of (m : Ascet_ast.t) name =
  match Ascet_ast.find_global m name with
  | Some g -> g
  | None -> unsupported "undeclared global %s" name

let writer_of (m : Ascet_ast.t) gname =
  match Ascet_analysis.flag_writers m gname with
  | [] -> None
  | [ w ] -> Some w
  | ws ->
    unsupported "global %s has several writers (%s)" gname
      (String.concat ", " ws)

(* Evaluate a memoryless closed expression over the initial global values. *)
let eval_initial (m : Ascet_ast.t) e =
  let env name : Value.message =
    match Ascet_ast.find_global m name with
    | Some g -> Value.Present g.Ascet_ast.g_init
    | None -> Value.Absent
  in
  match Expr.step ~tick:0 ~env e (Expr.init_state e) with
  | Value.Present v, _ -> Some v
  | Value.Absent, _ -> None

let default_mode_naming proc = (proc ^ "_on", proc ^ "_off")

let translate_process ~mode_naming (m : Ascet_ast.t) flags
    (p : Ascet_ast.process) : Model.component * bool =
  let clock = task_clock m p.proc_task in
  let written = Ascet_ast.globals_written p in
  let init_env =
    List.map (fun (name, _, init) -> (name, Expr.Const init)) p.proc_locals
  in
  let outputs_of env =
    List.map (fun g -> (g, Expr.When (lookup_or_port env g, clock))) written
  in
  let split = Ascet_analysis.implicit_modes ~flags p in
  let behavior, is_mtd, out_exprs =
    match split with
    | Some { Ascet_analysis.split_condition; then_branch; else_branch; prefix }
      ->
      let env0 = exec_stmts init_env prefix in
      let cond = subst env0 split_condition in
      let env_t = exec_stmts env0 then_branch in
      let env_f = exec_stmts env0 else_branch in
      let outs_t = outputs_of env_t and outs_f = outputs_of env_f in
      let then_name, else_name =
        match mode_naming p.proc_name with
        | Some names -> names
        | None -> default_mode_naming p.proc_name
      in
      let initial =
        match eval_initial m cond with
        | Some (Value.Bool true) -> then_name
        | Some (Value.Bool false) | Some _ | None -> else_name
      in
      let mtd : Model.mtd =
        { mtd_name = p.proc_name;
          mtd_modes =
            [ { mode_name = then_name; mode_behavior = Model.B_exprs outs_t };
              { mode_name = else_name; mode_behavior = Model.B_exprs outs_f } ];
          mtd_initial = initial;
          mtd_transitions =
            [ { mt_src = else_name; mt_dst = then_name; mt_guard = cond;
                mt_priority = 0 };
              { mt_src = then_name; mt_dst = else_name;
                mt_guard = Expr.not_ cond; mt_priority = 0 } ] }
      in
      (Model.B_mtd mtd, true, outs_t @ outs_f @ [ ("", cond) ])
    | None ->
      let env = exec_stmts init_env p.proc_body in
      let outs = outputs_of env in
      (Model.B_exprs outs, false, outs)
  in
  (* Ports: an input per referenced global, an output per written global.
     A global that is both read and written (accumulators, conditional
     writes) would collide with its own output port, so such inputs are
     renamed to <name>__in and the expressions substituted accordingly. *)
  let referenced =
    List.concat_map (fun (_, e) -> Expr.free_vars e) out_exprs
    |> List.sort_uniq String.compare
  in
  let collisions = List.filter (fun r -> List.mem r written) referenced in
  let rename_env = List.map (fun g -> (g, Expr.var (g ^ "__in"))) collisions in
  let rename e = if rename_env = [] then e else subst rename_env e in
  let behavior =
    if rename_env = [] then behavior
    else
      match behavior with
      | Model.B_exprs outs ->
        Model.B_exprs (List.map (fun (o, e) -> (o, rename e)) outs)
      | Model.B_mtd mtd ->
        Model.B_mtd
          { mtd with
            Model.mtd_modes =
              List.map
                (fun (mode : Model.mode) ->
                  match mode.mode_behavior with
                  | Model.B_exprs outs ->
                    { mode with
                      Model.mode_behavior =
                        Model.B_exprs
                          (List.map (fun (o, e) -> (o, rename e)) outs) }
                  | Model.B_std _ | Model.B_mtd _ | Model.B_dfd _
                  | Model.B_ssd _ | Model.B_unspecified -> mode)
                mtd.Model.mtd_modes;
            Model.mtd_transitions =
              List.map
                (fun (t : Model.mtd_transition) ->
                  { t with Model.mt_guard = rename t.mt_guard })
                mtd.Model.mtd_transitions }
      | (Model.B_std _ | Model.B_dfd _ | Model.B_ssd _ | Model.B_unspecified)
        as b -> b
  in
  let in_port_name name =
    if List.mem name collisions then name ^ "__in" else name
  in
  let in_ports =
    List.map
      (fun name ->
        let g = global_of m name in
        Model.in_port ~ty:g.Ascet_ast.g_type (in_port_name name))
      referenced
  in
  let out_ports =
    List.map
      (fun name ->
        let g = global_of m name in
        Model.out_port ~ty:g.Ascet_ast.g_type ~clock name)
      written
  in
  (Model.component p.proc_name ~ports:(in_ports @ out_ports) ~behavior,
   is_mtd)

let whitebox ?(mode_naming = fun _ -> None) ?(simplify = true)
    (m : Ascet_ast.t) =
  (match Ascet_ast.check m with
   | [] -> ()
   | problems -> unsupported "ill-formed ASCET module: %s" (List.hd problems));
  let flags = Ascet_analysis.inferred_flags m in
  let translations =
    List.map (translate_process ~mode_naming m flags) m.processes
  in
  let components = List.map fst translations in
  let mtds_extracted =
    List.length (List.filter (fun (_, is_mtd) -> is_mtd) translations)
  in
  (* Which components read a global, and through which input port (the
     port may have been renamed to <g>__in to avoid output collisions)? *)
  let readers_of gname =
    List.filter_map
      (fun (c : Model.component) ->
        let port =
          List.find_opt
            (fun (p : Model.port) ->
              p.port_dir = Model.In
              && (String.equal p.port_name gname
                  || String.equal p.port_name (gname ^ "__in")))
            c.comp_ports
        in
        Option.map (fun (p : Model.port) -> (c.comp_name, p.port_name)) port)
      components
  in
  let all_globals = m.globals in
  (* Generated hold components and channels. *)
  let gen = ref [] and channels = ref [] and boundary_in = ref [] in
  let boundary_out = ref [] in
  let add_channel ?delayed ?init name src dst =
    channels := Model.channel ?delayed ?init ~name src dst :: !channels
  in
  let hold_component ~name ~ty ~init =
    Model.component name
      ~ports:[ Model.in_port ~ty "in"; Model.out_port ~ty "out" ]
      ~behavior:(Model.B_exprs [ ("out", Expr.current init (Expr.var "in")) ])
  in
  let const_component ~name ~ty ~init =
    Model.component name
      ~ports:[ Model.out_port ~ty "out" ]
      ~behavior:(Model.B_exprs [ ("out", Expr.Const init) ])
  in
  let process_order name =
    match Ascet_ast.find_process m name with
    | Some p -> order_of m p
    | None -> (max_int, max_int)
  in
  List.iter
    (fun (g : Ascet_ast.global) ->
      let gname = g.Ascet_ast.g_name in
      let ty = g.Ascet_ast.g_type and init = g.Ascet_ast.g_init in
      let readers = readers_of gname in
      let is_output = g.Ascet_ast.g_kind = Ascet_ast.Output in
      match g.Ascet_ast.g_kind with
      | Ascet_ast.Input ->
        boundary_in := Model.in_port ~ty gname :: !boundary_in;
        List.iteri
          (fun i (r, port) ->
            add_channel
              (Printf.sprintf "in_%s_%d" gname i)
              (Model.boundary gname) (Model.at r port))
          readers
      | Ascet_ast.Message | Ascet_ast.Flag | Ascet_ast.Output ->
        (match writer_of m gname with
         | None ->
           (* constant global: only materialize if someone observes it *)
           if readers <> [] || is_output then begin
             let cname = "const_" ^ gname in
             gen := const_component ~name:cname ~ty ~init :: !gen;
             List.iteri
               (fun i (r, port) ->
                 add_channel
                   (Printf.sprintf "c_%s_%d" gname i)
                   (Model.at cname "out") (Model.at r port))
               readers;
             if is_output then begin
               boundary_out := Model.out_port ~ty gname :: !boundary_out;
               add_channel ("out_" ^ gname) (Model.at cname "out")
                 (Model.boundary gname)
             end
           end
         | Some writer ->
           let w_order = process_order writer in
           let fresh_readers, prev_readers =
             List.partition
               (fun (r, _port) -> process_order r > w_order)
               readers
           in
           let need_fresh = fresh_readers <> [] || is_output in
           if need_fresh then begin
             let hname = "hold_" ^ gname in
             gen := hold_component ~name:hname ~ty ~init :: !gen;
             add_channel ("w_" ^ gname) (Model.at writer gname)
               (Model.at hname "in");
             List.iteri
               (fun i (r, port) ->
                 add_channel
                   (Printf.sprintf "f_%s_%d" gname i)
                   (Model.at hname "out") (Model.at r port))
               fresh_readers;
             if is_output then begin
               boundary_out := Model.out_port ~ty gname :: !boundary_out;
               add_channel ("out_" ^ gname) (Model.at hname "out")
                 (Model.boundary gname)
             end
           end;
           if prev_readers <> [] then begin
             let hname = "prev_" ^ gname in
             gen := hold_component ~name:hname ~ty ~init :: !gen;
             add_channel ~delayed:true ?init:(Some init) ("wp_" ^ gname)
               (Model.at writer gname) (Model.at hname "in");
             List.iteri
               (fun i (r, port) ->
                 add_channel
                   (Printf.sprintf "p_%s_%d" gname i)
                   (Model.at hname "out") (Model.at r port))
               prev_readers
           end))
    all_globals;
  let net : Model.network =
    { net_name = m.mod_name;
      net_components = components @ List.rev !gen;
      net_channels = List.rev !channels }
  in
  let root =
    Model.component m.mod_name
      ~ports:(List.rev !boundary_in @ List.rev !boundary_out)
      ~behavior:(Model.B_dfd net)
  in
  let root = if simplify then Simplify.component root else root in
  let model : Model.model =
    { model_name = m.mod_name;
      model_level = Model.Fda;
      model_root = root;
      model_enums = m.enums }
  in
  let report =
    { processes = List.length m.processes;
      components = List.length net.net_components;
      mtds_extracted;
      flags_found = flags;
      flag_conditionals = Ascet_analysis.count_flag_conditionals ~flags m;
      multi_flag_emitters = Ascet_analysis.central_flag_emitters m }
  in
  (model, report)

let whitebox_component m = (fst (whitebox m)).Model.model_root

(* ------------------------------------------------------------------ *)
(* Black-box reengineering                                            *)
(* ------------------------------------------------------------------ *)

let blackbox ~name (cm : Automode_osek.Comm_matrix.t) =
  let module CM = Automode_osek.Comm_matrix in
  let nodes = CM.nodes cm in
  let component node =
    let outs =
      List.filter_map
        (fun (e : CM.entry) ->
          if String.equal e.sender node then
            Some (Model.out_port ~ty:Dtype.Tfloat ~resource:e.signal e.signal)
          else None)
        cm.CM.entries
    in
    let ins =
      List.filter_map
        (fun (e : CM.entry) ->
          if List.mem node e.receivers then
            Some (Model.in_port ~ty:Dtype.Tfloat ~resource:e.signal e.signal)
          else None)
        cm.CM.entries
    in
    Model.component node ~ports:(ins @ outs)
  in
  let channels =
    List.concat_map
      (fun (e : CM.entry) ->
        List.mapi
          (fun i r ->
            Model.channel
              ~name:(Printf.sprintf "%s_%d" e.signal i)
              (Model.at e.sender e.signal) (Model.at r e.signal))
          e.receivers)
      cm.CM.entries
  in
  let net : Model.network =
    { net_name = name;
      net_components = List.map component nodes;
      net_channels = channels }
  in
  { Model.model_name = name;
    model_level = Model.Faa;
    model_root =
      Model.component name ~ports:[] ~behavior:(Model.B_ssd net);
    model_enums = [] }
