(** Refinement transformations — from higher to lower abstraction levels
    (paper Sec. 4): "the transformation of physical signals to
    implementation signals (i.e. the choice of encoding and data type),
    clustering of DFDs according to their clocks neglecting their
    functional coherency and last but not least the mapping of CCDs to
    ECUs and tasks" (the last one is {!Automode_la.Deploy}). *)

open Automode_core
open Automode_la

exception Refine_error of string

(** {1 Physical -> implementation signals} *)

val quantize_expr : Impl_type.t -> Expr.t -> Expr.t
(** The base-language expression computing [decode (encode x)] — the
    value actually transported once the signal is implemented: scaling,
    round-to-nearest and container saturation for fixed-point types;
    rounding+saturation for plain integers; identity for floats.
    @raise Refine_error on non-numeric implementation types. *)

val quantizer_block : name:string -> Impl_type.t -> Model.component
(** An atomic block [in -> out] applying {!quantize_expr} — inserted on
    a channel to make the quantization of a refined signal explicit in
    the model. *)

val refine_signal :
  channel:string -> impl:Impl_type.t -> Model.network ->
  Model.network
(** Split the named channel and insert a {!quantizer_block}, recording
    the encoding choice in the model structure.
    @raise Refine_error on unknown channels. *)

val refine_cluster_types :
  choose:(Model.port -> Impl_type.t option) -> Cluster.t -> Cluster.t
(** Record implementation types on a cluster's interface (LA type
    extension).  Ports for which [choose] returns [None] keep their
    previous entry.  @raise Refine_error when a choice does not refine
    the port's abstract type. *)

(** {1 Clustering by clock} *)

val cluster_by_clock : name:string -> Model.component -> Ccd.t
(** Partition the blocks of a {e flat} FDA-level DFD component by the
    canonical period of their output clocks — "neglecting their
    functional coherency" — into one cluster per rate.  Channels between
    blocks of different rates become CCD channels (delay marks
    preserved); same-rate channels stay inside the cluster bodies.  The
    component's boundary ports become external CCD ports.
    @raise Refine_error on aperiodic blocks, non-flat networks, or
    non-DFD components. *)

(** {1 SSD -> CCD} *)

val ssd_to_ccd : Model.component -> Ccd.t
(** Dissolve the topmost SSD hierarchies of the component into a flat
    CCD (paper Sec. 3.3): composite sub-structures are inlined with
    their implicit delays turned into explicit channel delays; every
    remaining atomic component becomes a cluster (expression/STD/MTD
    behaviors are wrapped into singleton DFD bodies).
    @raise Refine_error when the component is not an SSD. *)
