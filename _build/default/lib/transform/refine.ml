open Automode_core
open Automode_la

exception Refine_error of string

let refine_error fmt = Format.kasprintf (fun s -> raise (Refine_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Physical -> implementation signals                                 *)
(* ------------------------------------------------------------------ *)

let quantize_expr (impl : Impl_type.t) x =
  let flimit e lo hi =
    Expr.Call ("limit", [ e; Expr.float lo; Expr.float hi ])
  in
  match impl with
  | Impl_type.Ifloat32 | Impl_type.Ifloat64 -> x
  | Impl_type.Iint w ->
    let lo, hi = Impl_type.word_range w in
    flimit (Expr.Call ("round", [ x ])) (float_of_int lo) (float_of_int hi)
  | Impl_type.Ifixed { container; scale; offset } ->
    let lo, hi = Impl_type.word_range container in
    let raw =
      flimit
        (Expr.Call ("round", [ Expr.((x - float offset) / float scale) ]))
        (float_of_int lo) (float_of_int hi)
    in
    Expr.((raw * float scale) + float offset)
  | Impl_type.Ibool | Impl_type.Ienum _ ->
    refine_error "quantize_expr: %s is not a numeric encoding"
      (Impl_type.to_string impl)

let quantizer_block ~name impl =
  (* dynamically typed ports: the quantizer splices into any numeric
     channel regardless of the endpoints' static types *)
  Dfd.block_of_expr ~name
    ~inputs:[ ("in", None) ]
    (quantize_expr impl (Expr.var "in"))

let refine_signal ~channel ~impl (net : Model.network) =
  let target =
    List.find_opt
      (fun (ch : Model.channel) -> String.equal ch.ch_name channel)
      net.net_channels
  in
  match target with
  | None -> refine_error "unknown channel %s" channel
  | Some ch ->
    let qname = "q_" ^ channel in
    let q = quantizer_block ~name:qname impl in
    let first =
      { ch with
        Model.ch_name = channel ^ "_raw";
        ch_dst = Model.at qname "in" }
    in
    let second =
      Model.channel ~name:channel (Model.at qname "out") ch.Model.ch_dst
    in
    { net with
      net_components = net.net_components @ [ q ];
      net_channels =
        List.concat_map
          (fun (c : Model.channel) ->
            if String.equal c.ch_name channel then [ first; second ] else [ c ])
          net.net_channels }

let refine_cluster_types ~choose (cluster : Cluster.t) =
  let impl_types =
    List.fold_left
      (fun acc (p : Model.port) ->
        match choose p with
        | None -> acc
        | Some impl ->
          (match p.port_type with
           | Some abstract when not (Impl_type.refines impl abstract) ->
             refine_error "implementation %s does not refine %s on port %s"
               (Impl_type.to_string impl) (Dtype.to_string abstract)
               p.port_name
           | Some _ | None ->
             (p.port_name, impl) :: List.remove_assoc p.port_name acc))
      cluster.Cluster.impl_types cluster.Cluster.ports
  in
  { cluster with Cluster.impl_types }

(* ------------------------------------------------------------------ *)
(* Clustering by clock                                                *)
(* ------------------------------------------------------------------ *)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Activation period of a block: gcd of its output-port clock periods
   (fallback: all ports). *)
let block_period (c : Model.component) =
  let periods ports =
    List.filter_map
      (fun (p : Model.port) ->
        match Clock.canon p.port_clock with
        | Clock.Periodic { period; _ } -> Some period
        | Clock.Aperiodic _ -> None
        | exception Clock.Invalid_clock _ -> None)
      ports
  in
  let outs = periods (Model.output_ports c) in
  let all = if outs = [] then periods c.comp_ports else outs in
  match all with
  | [] -> None
  | p :: rest -> Some (List.fold_left gcd p rest)

let cluster_by_clock ~name (comp : Model.component) =
  let net =
    match comp.comp_behavior with
    | Model.B_dfd net -> net
    | Model.B_ssd _ | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _
    | Model.B_unspecified -> refine_error "cluster_by_clock: not a DFD"
  in
  List.iter
    (fun (c : Model.component) ->
      match c.comp_behavior with
      | Model.B_dfd _ | Model.B_ssd _ ->
        refine_error "cluster_by_clock: network not flat (component %s)"
          c.comp_name
      | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified
        -> ())
    net.net_components;
  let with_periods =
    List.map
      (fun (c : Model.component) ->
        match block_period c with
        | Some p -> (p, c)
        | None ->
          refine_error "cluster_by_clock: block %s has no periodic clock"
            c.comp_name)
      net.net_components
  in
  let periods =
    List.sort_uniq Int.compare (List.map fst with_periods)
  in
  let cluster_name_of p = Printf.sprintf "%s_%dms" name p in
  let members p =
    List.filter_map
      (fun (p', c) -> if p = p' then Some c else None)
      with_periods
  in
  let period_of_comp cname =
    List.find_map
      (fun (p, (c : Model.component)) ->
        if String.equal c.comp_name cname then Some p else None)
      with_periods
  in
  let cluster_of_ep (ep : Model.endpoint) =
    match ep.ep_comp with
    | None -> None
    | Some cname -> period_of_comp cname
  in
  (* Channel classification. *)
  let internal, _crossing =
    List.partition
      (fun (ch : Model.channel) ->
        match cluster_of_ep ch.ch_src, cluster_of_ep ch.ch_dst with
        | Some p1, Some p2 -> p1 = p2
        | None, _ | _, None -> false (* boundary channels handled per side *))
      net.net_channels
  in
  let port_info (ep : Model.endpoint) =
    match ep.ep_comp with
    | None ->
      Option.map
        (fun (p : Model.port) -> p)
        (Model.find_port comp ep.ep_port)
    | Some cname ->
      Option.bind (Model.find_component net cname) (fun c ->
          Model.find_port c ep.ep_port)
  in
  (* Build one cluster per period. *)
  let mk_cluster p =
    let comps = members p in
    let comp_names = List.map (fun (c : Model.component) -> c.comp_name) comps in
    let mine (ep : Model.endpoint) =
      match ep.ep_comp with
      | Some c -> List.mem c comp_names
      | None -> false
    in
    let body_internal =
      List.filter (fun (ch : Model.channel) -> mine ch.ch_src && mine ch.ch_dst)
        internal
    in
    (* crossing channels and boundary channels induce cluster ports *)
    let in_needs =
      List.filter (fun (ch : Model.channel) -> mine ch.ch_dst && not (mine ch.ch_src))
        net.net_channels
    in
    let out_needs =
      List.filter (fun (ch : Model.channel) -> mine ch.ch_src && not (mine ch.ch_dst))
        net.net_channels
    in
    let in_port_name (ch : Model.channel) =
      Printf.sprintf "%s_%s"
        (Option.value ch.ch_dst.ep_comp ~default:"b")
        ch.ch_dst.ep_port
    in
    let out_port_name (ch : Model.channel) =
      Printf.sprintf "%s_%s"
        (Option.value ch.ch_src.ep_comp ~default:"b")
        ch.ch_src.ep_port
    in
    let clock = Clock.every p Clock.Base in
    let dedup_ports ports =
      List.fold_left
        (fun acc (pt : Model.port) ->
          if List.exists (fun (q : Model.port) -> String.equal q.port_name pt.port_name) acc
          then acc
          else pt :: acc)
        [] ports
      |> List.rev
    in
    let in_ports =
      dedup_ports
        (List.map
           (fun ch ->
             let ty =
               Option.bind (port_info ch.Model.ch_dst) (fun pt -> pt.Model.port_type)
             in
             Model.in_port ?ty ~clock (in_port_name ch))
           in_needs)
    in
    let out_ports =
      dedup_ports
        (List.map
           (fun ch ->
             let ty =
               Option.bind (port_info ch.Model.ch_src) (fun pt -> pt.Model.port_type)
             in
             Model.out_port ?ty ~clock (out_port_name ch))
           out_needs)
    in
    let body : Model.network =
      { net_name = cluster_name_of p ^ "_body";
        net_components = comps;
        net_channels =
          body_internal
          @ List.map
              (fun (ch : Model.channel) ->
                Model.channel
                  ~name:("in_" ^ ch.ch_name)
                  (Model.boundary (in_port_name ch))
                  ch.ch_dst)
              in_needs
          @ (* one forwarding channel per distinct out port: fan-out from a
               single source port to several outside readers shares it *)
          (List.fold_left
             (fun acc (ch : Model.channel) ->
               let port = out_port_name ch in
               if
                 List.exists
                   (fun (c : Model.channel) ->
                     String.equal c.ch_dst.ep_port port)
                   acc
               then acc
               else
                 Model.channel
                   ~name:("out_" ^ ch.ch_name)
                   ch.ch_src
                   (Model.boundary port)
                 :: acc)
             [] out_needs
          |> List.rev) }
    in
    Cluster.make ~name:(cluster_name_of p)
      ~ports:(in_ports @ out_ports)
      ~body ()
  in
  let clusters = List.map mk_cluster periods in
  (* CCD channels: crossing channels between clusters; boundary channels of
     the original network become external channels. *)
  let in_port_name (ch : Model.channel) =
    Printf.sprintf "%s_%s"
      (Option.value ch.ch_dst.ep_comp ~default:"b")
      ch.ch_dst.ep_port
  in
  let out_port_name (ch : Model.channel) =
    Printf.sprintf "%s_%s"
      (Option.value ch.ch_src.ep_comp ~default:"b")
      ch.ch_src.ep_port
  in
  let ccd_channels =
    List.filter_map
      (fun (ch : Model.channel) ->
        let src_cluster = Option.map cluster_name_of (cluster_of_ep ch.ch_src) in
        let dst_cluster = Option.map cluster_of_ep (Some ch.ch_dst) |> Option.join |> Option.map cluster_name_of in
        match src_cluster, dst_cluster with
        | Some s, Some d when not (String.equal s d) ->
          Some
            { ch with
              Model.ch_src = Model.at s (out_port_name ch);
              ch_dst = Model.at d (in_port_name ch) }
        | Some s, None ->
          (* to the boundary *)
          Some
            { ch with
              Model.ch_src = Model.at s (out_port_name ch);
              ch_dst = ch.ch_dst }
        | None, Some d ->
          Some
            { ch with
              Model.ch_src = ch.ch_src;
              ch_dst = Model.at d (in_port_name ch) }
        | None, None -> Some ch
        | Some s, Some _ ->
          ignore s;
          None (* same cluster: stays internal *))
      (List.filter
         (fun (ch : Model.channel) ->
           match cluster_of_ep ch.ch_src, cluster_of_ep ch.ch_dst with
           | Some p1, Some p2 -> p1 <> p2
           | None, _ | _, None -> true)
         net.net_channels)
  in
  Ccd.make ~name ~clusters ~channels:ccd_channels
    ~external_ports:comp.comp_ports ()

(* ------------------------------------------------------------------ *)
(* SSD -> CCD                                                         *)
(* ------------------------------------------------------------------ *)

let wrap_atomic (c : Model.component) : Model.network =
  let fwd_in =
    List.map
      (fun (p : Model.port) ->
        Model.channel ~name:("i_" ^ p.port_name)
          (Model.boundary p.port_name)
          (Model.at "impl" p.port_name))
      (Model.input_ports c)
  in
  let fwd_out =
    List.map
      (fun (p : Model.port) ->
        Model.channel ~name:("o_" ^ p.port_name)
          (Model.at "impl" p.port_name)
          (Model.boundary p.port_name))
      (Model.output_ports c)
  in
  { net_name = c.comp_name ^ "_body";
    net_components = [ { c with comp_name = "impl" } ];
    net_channels = fwd_in @ fwd_out }

let ssd_to_ccd (comp : Model.component) =
  let flat_net =
    match (Ssd.dissolve_top comp).comp_behavior with
    | Model.B_ssd net ->
      (* SSD semantics: every channel between siblings is delayed; make it
         explicit so the flat CCD preserves the timing. *)
      { net with
        Model.net_channels =
          List.map
            (fun (ch : Model.channel) ->
              match ch.ch_src.ep_comp, ch.ch_dst.ep_comp with
              | Some _, Some _ -> { ch with Model.ch_delayed = true }
              | None, _ | _, None -> ch)
            net.net_channels }
    | Model.B_dfd _ | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _
    | Model.B_unspecified -> refine_error "ssd_to_ccd: component is not an SSD"
  in
  let clusters =
    List.map
      (fun (c : Model.component) ->
        match c.comp_behavior with
        | Model.B_dfd body -> Cluster.make ~name:c.comp_name ~ports:c.comp_ports ~body ()
        | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _
        | Model.B_unspecified ->
          Cluster.make ~name:c.comp_name ~ports:c.comp_ports
            ~body:(wrap_atomic c) ()
        | Model.B_ssd _ ->
          refine_error "ssd_to_ccd: nested SSD survived dissolution in %s"
            c.comp_name)
      flat_net.net_components
  in
  Ccd.make ~name:(comp.comp_name ^ "_ccd") ~clusters
    ~channels:flat_net.net_channels ~external_ports:comp.comp_ports ()
