open Automode_core
open Automode_la

exception Not_partitionable of string

let transform ?(period = 1) (comp : Model.component) =
  let refactored =
    try Refactor.mtd_to_mode_port_dfd comp
    with Refactor.Not_applicable msg -> raise (Not_partitionable msg)
  in
  let net =
    match refactored.comp_behavior with
    | Model.B_dfd net -> net
    | Model.B_ssd _ | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _
    | Model.B_unspecified -> assert false
  in
  let clock = Clock.every period Clock.Base in
  let clocked (p : Model.port) = { p with Model.port_clock = clock } in
  (* Each block of the mode-port DFD becomes a cluster of its own. *)
  let clusters =
    List.map
      (fun (c : Model.component) ->
        let body : Model.network =
          { net_name = c.comp_name ^ "_body";
            net_components = [ { c with comp_name = "impl" } ];
            net_channels =
              List.map
                (fun (p : Model.port) ->
                  Model.channel ~name:("i_" ^ p.port_name)
                    (Model.boundary p.port_name)
                    (Model.at "impl" p.port_name))
                (Model.input_ports c)
              @ List.map
                  (fun (p : Model.port) ->
                    Model.channel ~name:("o_" ^ p.port_name)
                      (Model.at "impl" p.port_name)
                      (Model.boundary p.port_name))
                  (Model.output_ports c) }
        in
        Cluster.make ~name:c.comp_name
          ~ports:(List.map clocked c.comp_ports)
          ~body ())
      net.net_components
  in
  Ccd.make
    ~name:(comp.comp_name ^ "_partitioned")
    ~clusters ~channels:net.net_channels
    ~external_ports:(List.map clocked refactored.comp_ports)
    ()

let to_component = Ccd.to_component
