lib/transform/refactor.ml: Automode_core Dtype Expr Format List Model Mtd Network Option Printf Stdlib String
