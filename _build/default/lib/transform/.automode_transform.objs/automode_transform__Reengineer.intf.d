lib/transform/reengineer.mli: Ascet_ast Automode_ascet Automode_core Automode_osek Format Model
