lib/transform/equiv.ml: Automode_core Dtype Float Format Fun List Model Random Sim Trace Value
