lib/transform/refine.ml: Automode_core Automode_la Ccd Clock Cluster Dfd Dtype Expr Format Impl_type Int List Model Option Printf Ssd String
