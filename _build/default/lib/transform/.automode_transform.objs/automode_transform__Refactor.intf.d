lib/transform/refactor.mli: Automode_core Model
