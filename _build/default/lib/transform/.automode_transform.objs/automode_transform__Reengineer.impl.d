lib/transform/reengineer.ml: Ascet_analysis Ascet_ast Automode_ascet Automode_core Automode_osek Clock Dtype Expr Format List Model Option Printf Simplify String Value
