lib/transform/mtd_to_dataflow.ml: Automode_core Automode_la Ccd Clock Cluster List Model Refactor
