lib/transform/equiv.mli: Automode_core Format Model Sim Trace Value
