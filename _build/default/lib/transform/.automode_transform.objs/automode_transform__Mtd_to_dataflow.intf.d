lib/transform/mtd_to_dataflow.mli: Automode_core Automode_la Ccd Model
