lib/transform/refine.mli: Automode_core Automode_la Ccd Cluster Expr Impl_type Model
