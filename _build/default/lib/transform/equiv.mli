(** Trace-equivalence oracle for transformations (paper Sec. 4).

    Every AutoMoDe transformation is meant to be semantics-preserving
    (refactorings) or a documented refinement.  This module provides the
    oracle the test-suite and the benches use: simulate two components
    on the same randomly generated stimuli and compare the output
    traces. *)

open Automode_core

type divergence = {
  d_tick : int;
  d_flow : string;
  d_left : Value.message;
  d_right : Value.message;
}

val pp_divergence : Format.formatter -> divergence -> unit

val random_inputs :
  seed:int -> ?presence:float -> Model.port list -> Sim.input_fn
(** Random stimulus for the given input ports: each tick, each port
    carries a message with probability [presence] (default 1.0), with a
    type-directed random value (ints in [-100, 100], floats in
    [-100, 100], uniform bools/enum literals).  Deterministic in
    [seed]. *)

val trace_equivalent :
  ?ticks:int -> ?seed:int -> ?presence:float -> ?flows:string list ->
  Model.component -> Model.component -> (unit, divergence) result
(** Simulate both components (default 64 ticks, seed 42) on identical
    random stimuli over the {e left} component's input ports and compare
    outputs (restricted to [flows] when given).  The components must
    declare the same port names for meaningful results. *)

val equivalent_on_runs :
  runs:int -> ?ticks:int -> ?presence:float -> ?flows:string list ->
  Model.component -> Model.component -> (unit, int * divergence) result
(** Repeat {!trace_equivalent} over [runs] different seeds; [Error]
    carries the offending seed. *)

val refines_with_latency :
  ?float_tol:float -> window:int -> warmup:int -> flows:string list ->
  reference:Trace.t -> Trace.t -> (unit, divergence) result
(** Timing-refinement check: after [warmup] ticks, every present message
    of the refined trace must equal a message the [reference] produced
    on the same flow within the last [window] ticks.  This is the
    correctness notion for deployment-oriented transformations that
    insert delay operators (paper Sec. 3.3): values are preserved, their
    observation may shift by bounded latency.  [float_tol] (default 0)
    relaxes float comparisons: with continuously varying stimuli a
    delayed sampling instant yields nearby rather than bit-identical
    values. *)
