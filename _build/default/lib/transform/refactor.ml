open Automode_core

exception Not_applicable of string

let not_applicable fmt =
  Format.kasprintf (fun s -> raise (Not_applicable s)) fmt

(* ------------------------------------------------------------------ *)
(* MTD -> DFDs with explicit mode ports                               *)
(* ------------------------------------------------------------------ *)

let mode_port_name = "mode"

let mtd_to_mode_port_dfd (comp : Model.component) =
  let mtd =
    match comp.comp_behavior with
    | Model.B_mtd mtd -> mtd
    | Model.B_exprs _ | Model.B_std _ | Model.B_dfd _ | Model.B_ssd _
    | Model.B_unspecified ->
      not_applicable "component %s has no MTD behavior" comp.comp_name
  in
  let mode_exprs =
    List.map
      (fun (m : Model.mode) ->
        match m.mode_behavior with
        | Model.B_exprs outs ->
          List.iter
            (fun (_, e) ->
              if Expr.has_memory_operator e then
                not_applicable
                  "mode %s of %s uses pre/current (history not convertible)"
                  m.mode_name comp.comp_name)
            outs;
          (m.mode_name, outs)
        | Model.B_std _ | Model.B_mtd _ | Model.B_dfd _ | Model.B_ssd _
        | Model.B_unspecified ->
          not_applicable "mode %s of %s is not an expression mode" m.mode_name
            comp.comp_name)
      mtd.mtd_modes
  in
  let enum_ty = Mtd.mode_enum mtd in
  let enum_const mode =
    Expr.Const (Dtype.enum_value enum_ty mode)
  in
  let in_ports = Model.input_ports comp in
  let out_ports = Model.output_ports comp in
  let in_names = List.map (fun (p : Model.port) -> p.port_name) in_ports in
  let out_names = List.map (fun (p : Model.port) -> p.port_name) out_ports in
  (* Mode selector: an STD over the MTD's transition structure that emits
     the current mode on an explicit port every tick. *)
  let max_priority =
    List.fold_left
      (fun acc (t : Model.mtd_transition) -> Stdlib.max acc t.mt_priority)
      0 mtd.mtd_transitions
  in
  let selector_std : Model.std =
    { std_name = comp.comp_name ^ "_selector";
      std_states = List.map (fun (m : Model.mode) -> m.mode_name) mtd.mtd_modes;
      std_initial = mtd.mtd_initial;
      std_vars = [];
      std_transitions =
        List.map
          (fun (t : Model.mtd_transition) ->
            { Model.st_src = t.mt_src;
              st_dst = t.mt_dst;
              st_guard = t.mt_guard;
              st_outputs = [ (mode_port_name, enum_const t.mt_dst) ];
              st_updates = [];
              st_priority = t.mt_priority })
          mtd.mtd_transitions
        @ List.map
            (fun (m : Model.mode) ->
              { Model.st_src = m.mode_name;
                st_dst = m.mode_name;
                st_guard = Expr.bool true;
                st_outputs = [ (mode_port_name, enum_const m.mode_name) ];
                st_updates = [];
                st_priority = max_priority + 1 })
            mtd.mtd_modes }
  in
  let selector =
    Model.component (comp.comp_name ^ "_selector")
      ~ports:
        (List.map (fun (p : Model.port) -> p) in_ports
        @ [ Model.out_port ~ty:enum_ty mode_port_name ])
      ~behavior:(Model.B_std selector_std)
  in
  (* One DFD block per mode, with an explicit mode input port. *)
  let mode_block (mode_name, outs) =
    Model.component
      (comp.comp_name ^ "_" ^ mode_name)
      ~ports:
        (List.map (fun (p : Model.port) -> p) in_ports
        @ [ Model.in_port ~ty:enum_ty mode_port_name ]
        @ List.map
            (fun (p : Model.port) -> Model.out_port ?ty:p.port_type p.port_name)
            out_ports)
      ~behavior:(Model.B_exprs outs)
  in
  let mode_blocks = List.map mode_block mode_exprs in
  (* Multiplexer: pick the active mode's outputs. *)
  let mux_in_name mode out = out ^ "_" ^ mode in
  let mux_expr out =
    let rec build = function
      | [] -> assert false
      | [ (mode, _) ] -> Expr.var (mux_in_name mode out)
      | (mode, _) :: rest ->
        Expr.If
          ( Expr.Binop (Expr.Eq, Expr.var mode_port_name, enum_const mode),
            Expr.var (mux_in_name mode out),
            build rest )
    in
    build mode_exprs
  in
  let mux =
    Model.component (comp.comp_name ^ "_mux")
      ~ports:
        ([ Model.in_port ~ty:enum_ty mode_port_name ]
        @ List.concat_map
            (fun (p : Model.port) ->
              List.map
                (fun (mode, _) ->
                  Model.in_port ?ty:p.port_type (mux_in_name mode p.port_name))
                mode_exprs)
            out_ports
        @ List.map
            (fun (p : Model.port) -> Model.out_port ?ty:p.port_type p.port_name)
            out_ports)
      ~behavior:
        (Model.B_exprs (List.map (fun o -> (o, mux_expr o)) out_names))
  in
  let channels =
    (* inputs fan out to the selector and the mode blocks *)
    List.concat_map
      (fun i ->
        Model.channel ~name:("sel_" ^ i) (Model.boundary i)
          (Model.at selector.comp_name i)
        :: List.map
             (fun (mode, _) ->
               Model.channel
                 ~name:("in_" ^ i ^ "_" ^ mode)
                 (Model.boundary i)
                 (Model.at (comp.comp_name ^ "_" ^ mode) i))
             mode_exprs)
      in_names
    (* the mode signal reaches every mode block, the mux, and the boundary *)
    @ List.map
        (fun (mode, _) ->
          Model.channel
            ~name:("mode_" ^ mode)
            (Model.at selector.comp_name mode_port_name)
            (Model.at (comp.comp_name ^ "_" ^ mode) mode_port_name))
        mode_exprs
    @ [ Model.channel ~name:"mode_mux"
          (Model.at selector.comp_name mode_port_name)
          (Model.at mux.comp_name mode_port_name);
        Model.channel ~name:"mode_out"
          (Model.at selector.comp_name mode_port_name)
          (Model.boundary mode_port_name) ]
    (* mode outputs into the mux, mux outputs to the boundary *)
    @ List.concat_map
        (fun o ->
          List.map
            (fun (mode, _) ->
              Model.channel
                ~name:("mx_" ^ o ^ "_" ^ mode)
                (Model.at (comp.comp_name ^ "_" ^ mode) o)
                (Model.at mux.comp_name (mux_in_name mode o)))
            mode_exprs
          @ [ Model.channel ~name:("out_" ^ o)
                (Model.at mux.comp_name o)
                (Model.boundary o) ])
        out_names
  in
  let net : Model.network =
    { net_name = comp.comp_name ^ "_modeports";
      net_components = (selector :: mode_blocks) @ [ mux ];
      net_channels = channels }
  in
  { comp with
    comp_ports = comp.comp_ports @ [ Model.out_port ~ty:enum_ty mode_port_name ];
    comp_behavior = Model.B_dfd net }

(* ------------------------------------------------------------------ *)
(* Coordinator insertion                                              *)
(* ------------------------------------------------------------------ *)

let insert_coordinator ~resource ?name (model : Model.model) =
  let coordinator_name =
    Option.value name ~default:("coordinate_" ^ resource)
  in
  let rewrite (net : Model.network) kind =
    let writers =
      List.filter_map
        (fun (c : Model.component) ->
          List.find_map
            (fun (p : Model.port) ->
              if p.port_dir = Model.Out && p.port_resource = Some resource
              then Some (c.comp_name, p)
              else None)
            c.comp_ports)
        net.net_components
    in
    match writers with
    | [] | [ _ ] ->
      not_applicable "fewer than two functions drive actuator %s" resource
    | _ :: _ :: _ ->
      let cmd_in i = Printf.sprintf "cmd%d" i in
      let arbitration =
        let rec build i = function
          | [] -> assert false
          | [ _ ] -> Expr.var (cmd_in i)
          | _ :: rest ->
            Expr.If (Expr.Is_present (cmd_in i), Expr.var (cmd_in i),
                     build (i + 1) rest)
        in
        build 0 writers
      in
      let out_ty = (snd (List.hd writers)).Model.port_type in
      let coordinator =
        Model.component coordinator_name
          ~ports:
            (List.mapi
               (fun i (_, (p : Model.port)) ->
                 Model.in_port ?ty:p.port_type (cmd_in i))
               writers
            @ [ Model.port ?ty:out_ty ~resource Model.Out "cmd" ])
          ~behavior:(Model.B_exprs [ ("cmd", arbitration) ])
      in
      let untag (c : Model.component) =
        { c with
          comp_ports =
            List.map
              (fun (p : Model.port) ->
                if p.port_dir = Model.Out && p.port_resource = Some resource
                then { p with port_resource = None }
                else p)
              c.comp_ports }
      in
      let channels =
        net.net_channels
        @ List.mapi
            (fun i (writer, (p : Model.port)) ->
              Model.channel
                ~name:(Printf.sprintf "coord_%s_%d" resource i)
                (Model.at writer p.port_name)
                (Model.at coordinator_name (cmd_in i)))
            writers
      in
      let components =
        List.map untag net.net_components @ [ coordinator ]
      in
      ignore kind;
      { net with net_components = components; net_channels = channels }
  in
  let root = model.model_root in
  let behavior =
    match root.comp_behavior with
    | Model.B_ssd net -> Model.B_ssd (rewrite net `Ssd)
    | Model.B_dfd net -> Model.B_dfd (rewrite net `Dfd)
    | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified ->
      not_applicable "model root is not a network"
  in
  { model with model_root = { root with comp_behavior = behavior } }

(* ------------------------------------------------------------------ *)
(* Hierarchy restructuring                                            *)
(* ------------------------------------------------------------------ *)

let group_components ?(kind = `Ssd) ~names ~group_name (net : Model.network) =
  List.iter
    (fun n ->
      if Model.find_component net n = None then
        not_applicable "unknown component %s" n)
    names;
  if Model.find_component net group_name <> None then
    not_applicable "component %s already exists" group_name;
  let grouped (c : Model.component) = List.mem c.comp_name names in
  let in_group (ep : Model.endpoint) =
    match ep.ep_comp with Some c -> List.mem c names | None -> false
  in
  let members, rest = List.partition grouped net.net_components in
  let port_type_of ep =
    Option.bind
      (Network.resolve_port
         ~enclosing:(Model.component "tmp" ~ports:[])
         net ep)
      (fun (p : Model.port) -> p.port_type)
  in
  let inner, crossing_in, crossing_out, outer =
    List.fold_left
      (fun (inner, cin, cout, outer) (ch : Model.channel) ->
        match in_group ch.ch_src, in_group ch.ch_dst with
        | true, true -> (ch :: inner, cin, cout, outer)
        | false, true -> (inner, ch :: cin, cout, outer)
        | true, false -> (inner, cin, ch :: cout, outer)
        | false, false -> (inner, cin, cout, ch :: outer))
      ([], [], [], []) net.net_channels
  in
  let inner = List.rev inner
  and crossing_in = List.rev crossing_in
  and crossing_out = List.rev crossing_out
  and outer = List.rev outer in
  let gin_name i = Printf.sprintf "gi%d" i in
  let gout_name i = Printf.sprintf "go%d" i in
  let group_in_ports =
    List.mapi
      (fun i (ch : Model.channel) ->
        Model.port ?ty:(port_type_of ch.ch_dst) Model.In (gin_name i))
      crossing_in
  in
  let group_out_ports =
    List.mapi
      (fun i (ch : Model.channel) ->
        Model.port ?ty:(port_type_of ch.ch_src) Model.Out (gout_name i))
      crossing_out
  in
  let group_net : Model.network =
    { net_name = group_name;
      net_components = members;
      net_channels =
        inner
        @ List.mapi
            (fun i (ch : Model.channel) ->
              Model.channel
                ~name:(Printf.sprintf "fwd_in_%d" i)
                (Model.boundary (gin_name i))
                ch.ch_dst)
            crossing_in
        @ List.mapi
            (fun i (ch : Model.channel) ->
              Model.channel
                ~name:(Printf.sprintf "fwd_out_%d" i)
                ch.ch_src
                (Model.boundary (gout_name i)))
            crossing_out }
  in
  let behavior =
    match kind with
    | `Ssd -> Model.B_ssd group_net
    | `Dfd -> Model.B_dfd group_net
  in
  let group =
    Model.component group_name
      ~ports:(group_in_ports @ group_out_ports)
      ~behavior
  in
  let channels =
    outer
    @ List.mapi
        (fun i (ch : Model.channel) ->
          { ch with
            Model.ch_name = ch.ch_name ^ "_gin";
            ch_dst = Model.at group_name (gin_name i) })
        crossing_in
    @ List.mapi
        (fun i (ch : Model.channel) ->
          { ch with
            Model.ch_name = ch.ch_name ^ "_gout";
            ch_src = Model.at group_name (gout_name i) })
        crossing_out
  in
  { net with net_components = rest @ [ group ]; net_channels = channels }

let rename_component ~old_name ~new_name (net : Model.network) =
  if Model.find_component net old_name = None then
    not_applicable "unknown component %s" old_name;
  if Model.find_component net new_name <> None then
    not_applicable "component %s already exists" new_name;
  let rename_ep (ep : Model.endpoint) =
    if ep.ep_comp = Some old_name then { ep with ep_comp = Some new_name }
    else ep
  in
  { net with
    net_components =
      List.map
        (fun (c : Model.component) ->
          if String.equal c.comp_name old_name then
            { c with comp_name = new_name }
          else c)
        net.net_components;
    net_channels =
      List.map
        (fun (ch : Model.channel) ->
          { ch with
            ch_src = rename_ep ch.ch_src;
            ch_dst = rename_ep ch.ch_dst })
        net.net_channels }
