(** Reengineering transformations (paper Secs. 4, 5).

    {b White-box} reengineering lifts a complete ASCET-SD-like software
    implementation to a behaviorally complete FDA model:

    - every ASCET process becomes an FDA component activated at its
      task's rate (output expressions are [when]-sampled on the task
      clock);
    - inter-process messages become explicit channels — the undocumented
      global-variable accesses of the implementation are made visible,
      which the AutoMoDe operational model {e requires} ("prohibits
      implicit exchange of information, such as undocumented access of
      global variables", Sec. 2);
    - shared-variable {e read} semantics is preserved by generated
      hold components ([current] over the writer's message stream);
      a reader executing {e before} its writer (in task/process order)
      reads through a one-activation delay, one executing after reads
      the fresh value — exactly the ASCET sequential semantics;
    - processes whose body is an If-Then-Else over {e mode flags} become
      MTD components: the implicit modes are made explicit (Fig. 8).

    The resulting model is trace-equivalent to the ASCET module on the
    observable output globals (validated by {!Equiv} and the ASCET
    interpreter in the test-suite).

    {b Black-box} reengineering builds a {e partial} FAA model from a
    communication matrix: one unspecified vehicle function per node,
    one channel per signal. *)

open Automode_core
open Automode_ascet

type report = {
  processes : int;            (** ASCET processes translated *)
  components : int;           (** FDA components generated (incl. holds) *)
  mtds_extracted : int;       (** implicit mode splits made explicit *)
  flags_found : string list;  (** mode flags detected *)
  flag_conditionals : int;    (** If-statements over flags in the input *)
  multi_flag_emitters : (string * int) list;
      (** central flag-emitting processes (paper Sec. 5 smell) *)
}

val pp_report : Format.formatter -> report -> unit

exception Unsupported of string

val whitebox :
  ?mode_naming:(string -> (string * string) option) -> ?simplify:bool ->
  Ascet_ast.t -> Model.model * report
(** Translate an ASCET module to an FDA-level AutoMoDe model.
    [mode_naming proc] may supply (then-mode, else-mode) names for the
    MTD extracted from process [proc] (default [<proc>_on]/[<proc>_off]).
    [simplify] (default [true]) post-processes the symbolic-execution
    output with {!Automode_core.Simplify} — semantics-preserving, see
    the ablation bench for the size effect.
    @raise Unsupported on models outside the translatable fragment
    (several writers of one global, [Ascet_ast.check] failures). *)

val whitebox_component : Ascet_ast.t -> Model.component
(** Just the root component of {!whitebox} (convenience). *)

val blackbox : name:string -> Automode_osek.Comm_matrix.t -> Model.model
(** Partial FAA model from a communication matrix: per node one
    component with [B_unspecified] behavior, per signal an output port
    on the sender (tagged with the signal as resource), input ports on
    the receivers, and SSD channels for every dependency. *)
