(** Refactoring transformations — structural changes on one abstraction
    level (paper Sec. 4).

    "Other refactoring steps will replace an MTD by several DFDs having
    explicit mode-ports, or change the structural hierarchy in order to
    facilitate more efficient implementation"; the FAA example is
    restructuring around a shared actuator by introducing a coordinating
    functionality. *)

open Automode_core

exception Not_applicable of string

val mtd_to_mode_port_dfd : Model.component -> Model.component
(** Replace a component whose behavior is an MTD with {e memoryless
    expression modes} by a semantically equivalent DFD:
    - a mode-selector STD replicating the transition structure and
      emitting the current mode on an explicit enum-typed [mode] port;
    - one DFD block per mode (the mode's expressions), fed by the
      component inputs and carrying an explicit [mode] input port;
    - a multiplexer selecting the active mode's outputs.

    The resulting component has the same interface plus an additional
    [mode] output port.  Trace-equivalent on the original ports for
    MTDs whose mode behaviors are [B_exprs] without [Pre]/[Current]
    (history-free); @raise Not_applicable otherwise. *)

val insert_coordinator :
  resource:string -> ?name:string -> Model.model -> Model.model
(** Resolve an actuator conflict (the {!Faa_rules.actuator_conflict}
    countermeasure): give each conflicting function's port a private
    name, add a coordinator component that forwards the
    highest-declared-priority present command to the actuator, and
    re-tag only the coordinator's output with the resource.
    @raise Not_applicable when fewer than two functions drive
    [resource]. *)

val group_components :
  ?kind:[ `Ssd | `Dfd ] -> names:string list -> group_name:string ->
  Model.network -> Model.network
(** Hierarchy restructuring: move the named sibling components into a
    fresh sub-component (default an SSD group; pass [`Dfd] inside DFDs
    to preserve instantaneous semantics), re-splicing the crossing
    channels through boundary ports of the new group.  Channel delay
    marks are preserved (the new boundary forwarding adds none).
    @raise Not_applicable on unknown names. *)

val rename_component :
  old_name:string -> new_name:string -> Model.network -> Model.network
(** Rename a sibling component and every channel endpoint referring to
    it.  @raise Not_applicable on unknown or colliding names. *)
