open Automode_core

type divergence = {
  d_tick : int;
  d_flow : string;
  d_left : Value.message;
  d_right : Value.message;
}

let pp_divergence ppf d =
  Format.fprintf ppf "tick %d, flow %s: %a vs %a" d.d_tick d.d_flow
    Value.pp_message d.d_left Value.pp_message d.d_right

let random_value state (ty : Dtype.t option) =
  match ty with
  | Some Dtype.Tbool -> Value.Bool (Random.State.bool state)
  | Some Dtype.Tint | None -> Value.Int (Random.State.int state 201 - 100)
  | Some Dtype.Tfloat ->
    Value.Float (Random.State.float state 200. -. 100.)
  | Some (Dtype.Tenum e) ->
    let i = Random.State.int state (List.length e.literals) in
    Value.Enum (e.enum_name, List.nth e.literals i)
  | Some (Dtype.Ttuple _ as t) -> Dtype.default_value t

let random_inputs ~seed ?(presence = 1.0) (ports : Model.port list) =
  let inputs = List.filter (fun (p : Model.port) -> p.port_dir = Model.In) ports in
  (* Pre-generate per tick lazily but deterministically: derive a stream
     state per tick from the seed so that the same tick always yields the
     same messages regardless of query order. *)
  fun tick ->
    let state = Random.State.make [| seed; tick |] in
    List.filter_map
      (fun (p : Model.port) ->
        let present =
          presence >= 1.0 || Random.State.float state 1.0 < presence
        in
        if present then Some (p.port_name, Value.Present (random_value state p.port_type))
        else None)
      inputs

let trace_equivalent ?(ticks = 64) ?(seed = 42) ?presence ?flows left right =
  let inputs = random_inputs ~seed ?presence left.Model.comp_ports in
  let t_left = Sim.run ~ticks ~inputs left in
  let t_right = Sim.run ~ticks ~inputs right in
  let t_left, t_right =
    match flows with
    | Some fs -> (Trace.restrict t_left fs, Trace.restrict t_right fs)
    | None -> (t_left, t_right)
  in
  match Trace.first_divergence t_left t_right with
  | None -> Ok ()
  | Some (d_tick, d_flow, d_left, d_right) ->
    Error { d_tick; d_flow; d_left; d_right }

let equivalent_on_runs ~runs ?ticks ?presence ?flows left right =
  let rec go seed =
    if seed >= runs then Ok ()
    else
      match trace_equivalent ?ticks ~seed ?presence ?flows left right with
      | Ok () -> go (seed + 1)
      | Error d -> Error (seed, d)
  in
  go 0

let refines_with_latency ?(float_tol = 0.) ~window ~warmup ~flows ~reference
    refined =
  let close a b =
    match a, b with
    | Value.Present (Value.Float x), Value.Present (Value.Float y) ->
      Float.abs (x -. y) <= float_tol
    | _, _ -> Value.equal_message a b
  in
  let ticks = Trace.length refined in
  let rec scan_tick t =
    if t >= ticks then Ok ()
    else
      let bad_flow =
        List.find_opt
          (fun flow ->
            match Trace.get refined ~flow ~tick:t with
            | Value.Absent -> false
            | Value.Present _ as msg ->
              let matches d =
                t - d >= 0
                && close msg (Trace.get reference ~flow ~tick:(t - d))
              in
              not (List.exists matches (List.init (window + 1) Fun.id)))
          flows
      in
      match bad_flow with
      | None -> scan_tick (t + 1)
      | Some flow ->
        Error
          { d_tick = t;
            d_flow = flow;
            d_left = Trace.get reference ~flow ~tick:t;
            d_right = Trace.get refined ~flow ~tick:t }
  in
  scan_tick warmup
