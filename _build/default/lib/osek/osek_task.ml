type arrival = Periodic | Sporadic of { seed : int }

type t = {
  task_name : string;
  period : int;
  offset : int;
  wcet : int;
  priority : int;
  deadline : int;
  preemptable : bool;
  arrival : arrival;
}

let make ?(offset = 0) ?deadline ?(preemptable = true) ?(arrival = Periodic)
    ~name ~period ~wcet ~priority () =
  if period <= 0 then invalid_arg "Osek_task.make: period must be positive";
  if wcet <= 0 then invalid_arg "Osek_task.make: wcet must be positive";
  if offset < 0 then invalid_arg "Osek_task.make: negative offset";
  let deadline = Option.value deadline ~default:period in
  { task_name = name; period; offset; wcet; priority; deadline; preemptable;
    arrival }

let release_times t ~horizon =
  match t.arrival with
  | Periodic ->
    let rec go k acc =
      let r = t.offset + (k * t.period) in
      if r >= horizon then List.rev acc else go (k + 1) (r :: acc)
    in
    go 0 []
  | Sporadic { seed } ->
    (* minimum inter-arrival [period], plus a pseudo-random slack of up to
       one period, deterministic in the seed *)
    let state = Random.State.make [| seed; Hashtbl.hash t.task_name |] in
    let rec go at acc =
      if at >= horizon then List.rev acc
      else
        let next = at + t.period + Random.State.int state (t.period + 1) in
        go next (at :: acc)
    in
    go t.offset []

let utilization t = float_of_int t.wcet /. float_of_int t.period

let total_utilization tasks =
  List.fold_left (fun acc t -> acc +. utilization t) 0. tasks

let rate_monotonic_priorities tasks =
  let sorted =
    List.stable_sort (fun a b -> Int.compare a.period b.period) tasks
  in
  List.mapi (fun i t -> { t with priority = i }) sorted

let pp ppf t =
  Format.fprintf ppf "%s(T=%dus C=%dus P=%d D=%dus%s)" t.task_name t.period
    t.wcet t.priority t.deadline
    (if t.preemptable then "" else " np")
