lib/osek/comm_matrix.ml: Format List Printf Random Stdlib String
