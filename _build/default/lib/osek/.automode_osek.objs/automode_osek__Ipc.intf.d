lib/osek/ipc.mli:
