lib/osek/osek_task.ml: Format Hashtbl Int List Option Random
