lib/osek/ipc.ml: Int List Option String
