lib/osek/osek_task.mli: Format
