lib/osek/comm_matrix.mli: Format
