lib/osek/can_bus.ml: Format Hashtbl Int List Stdlib String
