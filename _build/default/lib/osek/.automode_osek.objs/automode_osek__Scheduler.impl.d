lib/osek/scheduler.ml: Array Bytes Format Hashtbl Int List Osek_task Printf Stdlib String
