lib/osek/can_bus.mli: Format
