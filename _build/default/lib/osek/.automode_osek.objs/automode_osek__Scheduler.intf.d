lib/osek/scheduler.mli: Format Osek_task
