type entry = {
  signal : string;
  sender : string;
  receivers : string list;
  size_bits : int;
  period_us : int;
}

type t = { entries : entry list }

let entry ~signal ~sender ~receivers ?(size_bits = 16) ?(period_us = 10_000)
    () =
  if receivers = [] then invalid_arg "Comm_matrix.entry: no receivers";
  if size_bits <= 0 then invalid_arg "Comm_matrix.entry: non-positive size";
  if period_us <= 0 then invalid_arg "Comm_matrix.entry: non-positive period";
  { signal; sender; receivers; size_bits; period_us }

let check m =
  let problems = ref [] in
  let signals = List.map (fun e -> e.signal) m.entries in
  let sorted = List.sort String.compare signals in
  let rec dups = function
    | a :: (b :: _ as rest) ->
      if String.equal a b then a :: dups rest else dups rest
    | [ _ ] | [] -> []
  in
  List.iter
    (fun s -> problems := Printf.sprintf "duplicate signal %s" s :: !problems)
    (List.sort_uniq String.compare (dups sorted));
  List.iter
    (fun e ->
      if List.mem e.sender e.receivers then
        problems :=
          Printf.sprintf "signal %s: sender %s is also a receiver" e.signal
            e.sender
          :: !problems)
    m.entries;
  List.rev !problems

let nodes m =
  List.concat_map (fun e -> e.sender :: e.receivers) m.entries
  |> List.sort_uniq String.compare

let signals_between m ~src ~dst =
  List.filter
    (fun e -> String.equal e.sender src && List.mem dst e.receivers)
    m.entries

let dependency_pairs m =
  List.concat_map
    (fun e -> List.map (fun r -> (e.sender, r)) e.receivers)
    m.entries
  |> List.sort_uniq compare

let stock_names =
  [ "DoorFL"; "DoorFR"; "DoorRL"; "DoorRR"; "Roof"; "SeatDriver"; "SeatPass";
    "Climate"; "Dashboard"; "BodyController"; "Gateway"; "LightFront";
    "LightRear"; "Wiper"; "Mirror"; "Trunk" ]

let generate_body_electronics ~seed ~nodes:n ~signals =
  if n < 2 then invalid_arg "generate_body_electronics: need >= 2 nodes";
  let state = Random.State.make [| seed |] in
  let node i =
    let stock = List.length stock_names in
    if i < stock then List.nth stock_names i
    else Printf.sprintf "%s%d" (List.nth stock_names (i mod stock)) (i / stock)
  in
  let pick_period () =
    match Random.State.int state 4 with
    | 0 -> 10_000
    | 1 -> 20_000
    | 2 -> 50_000
    | _ -> 100_000
  in
  let entries =
    List.init signals (fun i ->
        let sender = Random.State.int state n in
        let n_recv = 1 + Random.State.int state (Stdlib.min 3 (n - 1)) in
        let rec receivers acc k =
          if k = 0 then acc
          else
            let r = Random.State.int state n in
            if r = sender || List.mem r acc then receivers acc k
            else receivers (r :: acc) (k - 1)
        in
        let recvs = receivers [] n_recv in
        { signal = Printf.sprintf "sig_%03d" i;
          sender = node sender;
          receivers = List.map node recvs;
          size_bits = 1 + Random.State.int state 32;
          period_us = pick_period () })
  in
  { entries }

let pp ppf m =
  List.iter
    (fun e ->
      Format.fprintf ppf "%-12s %-14s -> %-40s %2d bits %6d us@\n" e.signal
        e.sender
        (String.concat ", " e.receivers)
        e.size_bits e.period_us)
    m.entries
