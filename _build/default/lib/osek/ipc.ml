type 'a cell = { value : 'a; version : int }

type 'a store = {
  cells : (string * 'a cell) list;
  next_version : int;
}

let create bindings =
  let names = List.map fst bindings in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Ipc.create: duplicate message names";
  { cells = List.map (fun (n, v) -> (n, { value = v; version = 0 })) bindings;
    next_version = 1 }

let publish store updates =
  let v = store.next_version in
  let cells =
    List.map
      (fun (name, cell) ->
        match List.assoc_opt name updates with
        | Some value -> (name, { value; version = v })
        | None -> (name, cell))
      store.cells
  in
  { cells; next_version = v + 1 }

let find store name =
  match List.assoc_opt name store.cells with
  | Some cell -> cell
  | None -> raise Not_found

let read_direct store name = (find store name).value
let version store name = (find store name).version

type 'a snapshot = (string * 'a cell) list

let copy_in store names = List.map (fun n -> (n, find store n)) names

let merge a b =
  a @ List.filter (fun (n, _) -> not (List.mem_assoc n a)) b

let read snapshot name =
  match List.assoc_opt name snapshot with
  | Some cell -> cell.value
  | None -> raise Not_found

let consistent snapshot ~grouped =
  let versions =
    List.filter_map
      (fun name ->
        Option.map (fun c -> c.version) (List.assoc_opt name snapshot))
      grouped
  in
  match versions with
  | [] -> true
  | v :: rest -> List.for_all (Int.equal v) rest
