(** Task model of the OSEK/ERCOS-style substrate (paper Secs. 3.3, 3.4).

    The AutoMoDe LA level deploys clusters onto operating system tasks
    scheduled by a fixed-priority, preemptive scheduler [12].  This
    module defines the task parameters used by the {!Scheduler}
    simulation.  Time is in integer microseconds. *)

type arrival =
  | Periodic
      (** released at [offset + k*period] *)
  | Sporadic of { seed : int }
      (** event-triggered with a minimum inter-arrival time of [period]:
          released at pseudo-random instants at least [period] apart
          (deterministic in [seed]).  This realizes the paper's mixed
          time-/event-triggered modeling (Sec. 2) on the OS level. *)

type t = {
  task_name : string;
  period : int;        (** activation period / minimum inter-arrival, us *)
  offset : int;        (** first activation, us *)
  wcet : int;          (** worst-case execution time, us *)
  priority : int;      (** smaller number = higher priority *)
  deadline : int;      (** relative deadline, us (typically = period) *)
  preemptable : bool;  (** OSEK "full-preemptive" vs "non-preemptive" task *)
  arrival : arrival;
}

val make :
  ?offset:int -> ?deadline:int -> ?preemptable:bool -> ?arrival:arrival ->
  name:string -> period:int -> wcet:int -> priority:int -> unit -> t
(** Deadline defaults to the period; offset to 0; preemptable to true;
    arrival to {!Periodic}.
    @raise Invalid_argument on non-positive period or wcet, or negative
    offset. *)

val release_times : t -> horizon:int -> int list
(** All release instants in [0, horizon): the arithmetic progression for
    periodic tasks; for sporadic tasks, pseudo-random instants honoring
    the minimum inter-arrival time (deterministic in the seed). *)

val utilization : t -> float
(** [wcet / period]. *)

val total_utilization : t list -> float

val rate_monotonic_priorities : t list -> t list
(** Reassign priorities by period (shorter period = higher priority),
    preserving the given order among equal periods. *)

val pp : Format.formatter -> t -> unit
