(** Data-integrity inter-task communication (ERCOS-style, paper ref [12]).

    Under preemptive scheduling, a lower-priority task reading a message
    that a higher-priority task updates can observe torn, inconsistent
    data.  The OSEK/ERCOS mechanism gives every job a private,
    consistent snapshot: messages are {e copied in} when the job starts
    and results are {e copied out (published)} atomically when it ends.

    The model here is deliberately abstract (values are polymorphic);
    the generated communication components of {!Automode_codegen} follow
    exactly this protocol, and the test suite uses {!val:consistent} to
    show that snapshots never mix two publications while direct shared
    reads can. *)

type 'a store
(** Published message values, tagged with a publication version. *)

val create : (string * 'a) list -> 'a store
(** Initial store; every message starts at version 0.
    @raise Invalid_argument on duplicate message names. *)

val publish : 'a store -> (string * 'a) list -> 'a store
(** Atomic copy-out of a terminating job: all listed messages are
    updated together and receive one fresh common version. *)

val read_direct : 'a store -> string -> 'a
(** Unprotected read of the latest value (no integrity).
    @raise Not_found on unknown messages. *)

type 'a snapshot

val copy_in : 'a store -> string list -> 'a snapshot
(** Consistent copy-in of the listed messages at job start. *)

val read : 'a snapshot -> string -> 'a
(** Read from the job's private copy.  @raise Not_found. *)

val merge : 'a snapshot -> 'a snapshot -> 'a snapshot
(** Combine two partial snapshots (left-biased on collisions) — models a
    copy-in that was interrupted and resumed against a newer store; used
    by the tests to exhibit torn reads that {!consistent} detects. *)

val version : 'a store -> string -> int
(** Current publication version of a message. *)

val consistent : 'a snapshot -> grouped:string list -> bool
(** [true] iff all [grouped] messages in the snapshot carry the same
    publication version — i.e. they stem from one atomic publication.
    (Messages published together always satisfy this; interleaved direct
    reads generally do not.) *)
