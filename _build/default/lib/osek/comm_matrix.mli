(** Communication matrices (paper Secs. 3.4, 4).

    A communication matrix captures which signals flow between which
    E/E-architecture nodes — the input of "black-box" reengineering
    (matrix -> partial FAA) and the configuration source for the
    generated communication components. *)

type entry = {
  signal : string;
  sender : string;           (** sending node (ECU or function) *)
  receivers : string list;   (** receiving nodes, non-empty *)
  size_bits : int;
  period_us : int;
}

type t = { entries : entry list }

val entry :
  signal:string -> sender:string -> receivers:string list ->
  ?size_bits:int -> ?period_us:int -> unit -> entry
(** Defaults: 16 bits, 10 ms. @raise Invalid_argument on empty receiver
    lists or non-positive sizes/periods. *)

val check : t -> string list
(** Problems: duplicate signal names, senders also listed as receivers
    of their own signal. *)

val nodes : t -> string list
(** All senders and receivers, sorted, without duplicates. *)

val signals_between : t -> src:string -> dst:string -> entry list

val dependency_pairs : t -> (string * string) list
(** All (sender, receiver) pairs, without duplicates — the functional
    dependencies a partial FAA is built from. *)

val generate_body_electronics : seed:int -> nodes:int -> signals:int -> t
(** Synthetic body-electronics matrix: [nodes] ECU-like nodes
    ("DoorFL", "Roof", ...; cyclic suffixes beyond the stock names) and
    [signals] signals with plausible sizes (1..32 bits) and periods
    (10/20/50/100 ms), deterministically from [seed]. *)

val pp : Format.formatter -> t -> unit
