open Automode_core

let declared_flags (m : Ascet_ast.t) =
  List.filter_map
    (fun (g : Ascet_ast.global) ->
      match g.g_kind with
      | Ascet_ast.Flag -> Some g.g_name
      | Ascet_ast.Message | Ascet_ast.Input | Ascet_ast.Output -> None)
    m.globals

(* Occurrences of a global in a statement list, split into reads inside
   if-conditions and reads elsewhere. *)
let rec occurrences name (stmts : Ascet_ast.stmt list) =
  List.fold_left
    (fun (in_cond, elsewhere) (s : Ascet_ast.stmt) ->
      match s with
      | Ascet_ast.Assign (_, e) | Ascet_ast.Send (_, e) ->
        let n = if List.mem name (Expr.free_vars e) then 1 else 0 in
        (in_cond, elsewhere + n)
      | Ascet_ast.If (cond, then_s, else_s) ->
        let n = if List.mem name (Expr.free_vars cond) then 1 else 0 in
        let c1, e1 = occurrences name then_s in
        let c2, e2 = occurrences name else_s in
        (in_cond + n + c1 + c2, elsewhere + e1 + e2))
    (0, 0) stmts

let inferred_flags (m : Ascet_ast.t) =
  let candidate (g : Ascet_ast.global) =
    match g.g_kind with
    | Ascet_ast.Flag -> true
    | Ascet_ast.Input | Ascet_ast.Output -> false
    | Ascet_ast.Message ->
      (match g.g_type with
       | Dtype.Tbool | Dtype.Tenum _ ->
         let totals =
           List.fold_left
             (fun (c, e) (p : Ascet_ast.process) ->
               let c', e' = occurrences g.g_name p.proc_body in
               (c + c', e + e'))
             (0, 0) m.processes
         in
         (match totals with
          | 0, _ -> false (* never read in a condition: not a mode flag *)
          | _, 0 -> true  (* read only in conditions *)
          | _, _ -> false)
       | Dtype.Tint | Dtype.Tfloat | Dtype.Ttuple _ -> false)
  in
  List.filter_map
    (fun g -> if candidate g then Some g.Ascet_ast.g_name else None)
    m.globals

let flag_readers (m : Ascet_ast.t) name =
  List.filter_map
    (fun (p : Ascet_ast.process) ->
      if List.mem name (Ascet_ast.globals_read p) then Some p.proc_name
      else None)
    m.processes

let flag_writers (m : Ascet_ast.t) name =
  List.filter_map
    (fun (p : Ascet_ast.process) ->
      if List.mem name (Ascet_ast.globals_written p) then Some p.proc_name
      else None)
    m.processes

let central_flag_emitters (m : Ascet_ast.t) =
  let flags = inferred_flags m in
  List.filter_map
    (fun (p : Ascet_ast.process) ->
      let written =
        List.filter (fun g -> List.mem g flags) (Ascet_ast.globals_written p)
      in
      match written with
      | [] | [ _ ] -> None
      | _ :: _ :: _ -> Some (p.proc_name, List.length written))
    m.processes
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let process_dataflow (m : Ascet_ast.t) =
  List.concat_map
    (fun (writer : Ascet_ast.process) ->
      List.concat_map
        (fun g ->
          List.filter_map
            (fun (reader : Ascet_ast.process) ->
              if
                (not (String.equal reader.proc_name writer.proc_name))
                && List.mem g (Ascet_ast.globals_read reader)
              then Some (writer.proc_name, g, reader.proc_name)
              else None)
            m.processes)
        (Ascet_ast.globals_written writer))
    m.processes

type mode_split = {
  split_condition : Expr.t;
  then_branch : Ascet_ast.stmt list;
  else_branch : Ascet_ast.stmt list;
  prefix : Ascet_ast.stmt list;
}

let reads_any_flag ~flags e =
  List.exists (fun v -> List.mem v flags) (Expr.free_vars e)

let reads_only_flags ~flags e =
  let vars = Expr.free_vars e in
  vars <> [] && List.for_all (fun v -> List.mem v flags) vars

let rec stmt_reads_flag ~flags (s : Ascet_ast.stmt) =
  match s with
  | Ascet_ast.Assign (_, e) | Ascet_ast.Send (_, e) -> reads_any_flag ~flags e
  | Ascet_ast.If (cond, then_s, else_s) ->
    reads_any_flag ~flags cond
    || List.exists (stmt_reads_flag ~flags) then_s
    || List.exists (stmt_reads_flag ~flags) else_s

let implicit_modes_of_body ~flags (body : Ascet_ast.stmt list) =
  let rec split prefix = function
    | [] -> None
    | (Ascet_ast.If (cond, then_s, else_s) :: rest : Ascet_ast.stmt list)
      when reads_only_flags ~flags cond ->
      if rest = [] then
        Some
          { split_condition = cond;
            then_branch = then_s;
            else_branch = else_s;
            prefix = List.rev prefix }
      else None (* trailing statements: not a clean mode split *)
    | s :: rest ->
      if stmt_reads_flag ~flags s then None else split (s :: prefix) rest
  in
  split [] body

let implicit_modes ~flags (p : Ascet_ast.process) =
  implicit_modes_of_body ~flags p.proc_body

let count_flag_conditionals ~flags (m : Ascet_ast.t) =
  let rec count (stmts : Ascet_ast.stmt list) =
    List.fold_left
      (fun acc (s : Ascet_ast.stmt) ->
        match s with
        | Ascet_ast.Assign _ | Ascet_ast.Send _ -> acc
        | Ascet_ast.If (cond, then_s, else_s) ->
          let here = if reads_any_flag ~flags cond then 1 else 0 in
          acc + here + count then_s + count else_s)
      0 stmts
  in
  List.fold_left
    (fun acc (p : Ascet_ast.process) -> acc + count p.proc_body)
    0 m.processes
