(** Lexer for the textual ASCET-like format (see {!Ascet_parser} for the
    grammar).  Comments run from ["//"] to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | KW of string      (** keyword: module, enum, input, output, message,
                          flag, task, period, process, on, local, send,
                          if, else, true, false, and, or, not, mod *)
  | LBRACE | RBRACE | LPAREN | RPAREN
  | COLON | SEMI | COMMA
  | ASSIGN            (** [:=] *)
  | EQ                (** [=] *)
  | NEQ               (** [/=] *)
  | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH
  | EOF

type located = { tok : token; line : int }

exception Lex_error of string * int  (** message, line *)

val tokenize : string -> located list
(** Tokenize a whole source text.  @raise Lex_error on stray characters. *)

val token_to_string : token -> string
