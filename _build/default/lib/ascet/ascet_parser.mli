(** Recursive-descent parser for the textual ASCET-like format.

    Grammar (one module per source text):
    {v
    module   ::= "module" IDENT decl*
    decl     ::= "enum" IDENT "{" IDENT ("," IDENT)* "}"
               | kind IDENT ":" type "=" literal
               | "task" IDENT "period" INT
               | "process" IDENT "on" IDENT "{" local* stmt* "}"
    kind     ::= "input" | "output" | "message" | "flag"
    type     ::= "bool" | "int" | "float" | IDENT        (declared enum)
    local    ::= "local" IDENT ":" type "=" literal ";"
    stmt     ::= IDENT ":=" expr ";"
               | "send" IDENT expr ";"
               | "if" expr "{" stmt* "}" ("else" "{" stmt* "}")?
    expr     ::= standard infix expression with precedence
                 or < and < not < comparison < + - < * / mod < unary -
                 primaries: literals, "true", "false", enum literals,
                 variables, calls IDENT "(" expr, ... ")", "(" expr ")"
    v}

    Enum literals are recognized because enums are declared before use;
    an identifier that names a declared literal parses as an enum
    constant, anything else as a variable reference. *)

exception Parse_error of string * int  (** message, line *)

val parse : string -> Ascet_ast.t
(** Parse a full module from source text.
    @raise Parse_error and @raise Ascet_lexer.Lex_error on bad input. *)

val parse_file : string -> Ascet_ast.t
(** Read and parse a [.ascet] file.  @raise Sys_error on IO failure. *)
