(** Interpreter for the ASCET-like substrate.

    Execution model (single ECU, no preemption modeled here — scheduling
    effects are {!Automode_osek}'s concern): time advances in 1 ms
    steps; at step [t], every task with [t mod period = 0] activates and
    runs its processes in declaration order; statements execute
    sequentially; [Send] updates the global message store immediately
    (raw shared-memory semantics, which is exactly what white-box
    reengineering starts from).  Locals are reset to their declared
    initial values at each activation — persistent state lives in
    globals.

    The interpreter is the trace-equivalence oracle for the
    reengineering transformation: the reengineered AutoMoDe model must
    produce the same output-global streams. *)

open Automode_core

exception Run_error of string

type state
(** Global message store. *)

val init : Ascet_ast.t -> state
val read_global : state -> string -> Value.t
(** @raise Not_found on unknown globals. *)

val step :
  Ascet_ast.t -> inputs:(string * Value.t) list -> t_ms:int -> state -> state
(** Execute one 1 ms step: apply environment inputs to the [Input]
    globals, then run the processes of every task activated at [t_ms].
    @raise Run_error on evaluation failures. *)

type input_fn = int -> (string * Value.t) list

val run :
  Ascet_ast.t -> ticks:int -> inputs:input_fn -> observe:string list ->
  Trace.t
(** Run for [ticks] milliseconds, recording the listed globals after
    every step (as always-present messages). *)
