open Automode_core

type global_kind = Message | Flag | Input | Output

type global = {
  g_name : string;
  g_kind : global_kind;
  g_type : Dtype.t;
  g_init : Value.t;
}

type stmt =
  | Assign of string * Expr.t
  | Send of string * Expr.t
  | If of Expr.t * stmt list * stmt list

type process = {
  proc_name : string;
  proc_task : string;
  proc_locals : (string * Dtype.t * Value.t) list;
  proc_body : stmt list;
}

type task_decl = { task_name : string; period_ms : int }

type t = {
  mod_name : string;
  enums : Dtype.enum_decl list;
  globals : global list;
  tasks : task_decl list;
  processes : process list;
}

let find_global m name =
  List.find_opt (fun g -> String.equal g.g_name name) m.globals

let find_process m name =
  List.find_opt (fun p -> String.equal p.proc_name name) m.processes

let find_task m name =
  List.find_opt (fun t -> String.equal t.task_name name) m.tasks

let find_enum m name =
  List.find_opt
    (fun (e : Dtype.enum_decl) -> String.equal e.enum_name name)
    m.enums

let processes_of_task m task =
  List.filter (fun p -> String.equal p.proc_task task) m.processes

let rec stmt_reads = function
  | Assign (_, e) | Send (_, e) -> Expr.free_vars e
  | If (cond, then_s, else_s) ->
    Expr.free_vars cond
    @ List.concat_map stmt_reads then_s
    @ List.concat_map stmt_reads else_s

let rec stmt_writes = function
  | Assign _ -> []
  | Send (name, _) -> [ name ]
  | If (_, then_s, else_s) ->
    List.concat_map stmt_writes then_s @ List.concat_map stmt_writes else_s

let local_names p = List.map (fun (n, _, _) -> n) p.proc_locals

let globals_read p =
  let locals = local_names p in
  List.concat_map stmt_reads p.proc_body
  |> List.filter (fun n -> not (List.mem n locals))
  |> List.sort_uniq String.compare

let globals_written p =
  List.concat_map stmt_writes p.proc_body |> List.sort_uniq String.compare

let duplicates names =
  let sorted = List.sort String.compare names in
  let rec go = function
    | a :: (b :: _ as rest) -> if String.equal a b then a :: go rest else go rest
    | [ _ ] | [] -> []
  in
  List.sort_uniq String.compare (go sorted)

let check m =
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  List.iter (fun n -> add "duplicate global %s" n)
    (duplicates (List.map (fun g -> g.g_name) m.globals));
  List.iter (fun n -> add "duplicate process %s" n)
    (duplicates (List.map (fun p -> p.proc_name) m.processes));
  List.iter (fun n -> add "duplicate task %s" n)
    (duplicates (List.map (fun t -> t.task_name) m.tasks));
  List.iter
    (fun t ->
      if t.period_ms <= 0 then add "task %s has non-positive period" t.task_name)
    m.tasks;
  List.iter
    (fun g ->
      if not (Dtype.value_has_type g.g_init g.g_type) then
        add "global %s: init value %s does not have type %s" g.g_name
          (Value.to_string g.g_init) (Dtype.to_string g.g_type))
    m.globals;
  let check_process p =
    if find_task m p.proc_task = None then
      add "process %s bound to unknown task %s" p.proc_name p.proc_task;
    let locals = local_names p in
    List.iter
      (fun n ->
        if find_global m n <> None then
          add "process %s: local %s shadows a global" p.proc_name n)
      locals;
    let known name = List.mem name locals || find_global m name <> None in
    let check_expr context e =
      if Expr.has_memory_operator e then
        add "process %s: %s uses pre/current (state belongs in globals)"
          p.proc_name context;
      List.iter
        (fun v ->
          if not (known v) then
            add "process %s: %s references undeclared %s" p.proc_name context v)
        (Expr.free_vars e)
    in
    let rec check_stmt = function
      | Assign (target, e) ->
        if not (List.mem target locals) then
          add "process %s: assignment to undeclared local %s" p.proc_name
            target;
        check_expr ("assignment to " ^ target) e
      | Send (target, e) ->
        (match find_global m target with
         | None ->
           add "process %s: send to undeclared global %s" p.proc_name target
         | Some g ->
           (match g.g_kind with
            | Input ->
              add "process %s: send to input global %s" p.proc_name target
            | Message | Flag | Output -> ()));
        check_expr ("send to " ^ target) e
      | If (cond, then_s, else_s) ->
        check_expr "if-condition" cond;
        List.iter check_stmt then_s;
        List.iter check_stmt else_s
    in
    List.iter check_stmt p.proc_body
  in
  List.iter check_process m.processes;
  List.rev !problems
