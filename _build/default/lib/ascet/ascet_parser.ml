open Automode_core
module L = Ascet_lexer

exception Parse_error of string * int

type state = {
  mutable tokens : L.located list;
  mutable enums : Dtype.enum_decl list;
}

let error st fmt =
  let line = match st.tokens with { L.line; _ } :: _ -> line | [] -> 0 in
  Format.kasprintf (fun s -> raise (Parse_error (s, line))) fmt

let peek st =
  match st.tokens with
  | { L.tok; _ } :: _ -> tok
  | [] -> L.EOF

let advance st =
  match st.tokens with
  | _ :: rest -> st.tokens <- rest
  | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else
    error st "expected %s, found %s" (L.token_to_string tok)
      (L.token_to_string (peek st))

let expect_kw st kw =
  match peek st with
  | L.KW k when String.equal k kw -> advance st
  | t -> error st "expected %s, found %s" kw (L.token_to_string t)

let ident st =
  match peek st with
  | L.IDENT name -> advance st; name
  | t -> error st "expected identifier, found %s" (L.token_to_string t)

let int_lit st =
  match peek st with
  | L.INT i -> advance st; i
  | t -> error st "expected integer, found %s" (L.token_to_string t)

let enum_of_literal st lit =
  List.find_opt
    (fun (e : Dtype.enum_decl) -> List.mem lit e.literals)
    st.enums

let parse_type st =
  match peek st with
  | L.IDENT "bool" -> advance st; Dtype.Tbool
  | L.IDENT "int" -> advance st; Dtype.Tint
  | L.IDENT "float" -> advance st; Dtype.Tfloat
  | L.IDENT name ->
    advance st;
    (match
       List.find_opt
         (fun (e : Dtype.enum_decl) -> String.equal e.enum_name name)
         st.enums
     with
     | Some e -> Dtype.Tenum e
     | None -> error st "unknown type %s" name)
  | t -> error st "expected a type, found %s" (L.token_to_string t)

let parse_literal st =
  match peek st with
  | L.KW "true" -> advance st; Value.Bool true
  | L.KW "false" -> advance st; Value.Bool false
  | L.INT i -> advance st; Value.Int i
  | L.FLOAT f -> advance st; Value.Float f
  | L.MINUS ->
    advance st;
    (match peek st with
     | L.INT i -> advance st; Value.Int (-i)
     | L.FLOAT f -> advance st; Value.Float (-.f)
     | t -> error st "expected number after -, found %s" (L.token_to_string t))
  | L.IDENT name ->
    (match enum_of_literal st name with
     | Some e -> advance st; Value.Enum (e.enum_name, name)
     | None -> error st "unknown literal %s" name)
  | t -> error st "expected a literal, found %s" (L.token_to_string t)

(* Expressions: precedence climbing. *)
let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | L.KW "or" ->
    advance st;
    Expr.Binop (Expr.Or, lhs, parse_or st)
  | _ -> lhs

and parse_and st =
  let lhs = parse_not st in
  match peek st with
  | L.KW "and" ->
    advance st;
    Expr.Binop (Expr.And, lhs, parse_and st)
  | _ -> lhs

and parse_not st =
  match peek st with
  | L.KW "not" ->
    advance st;
    Expr.Unop (Expr.Not, parse_not st)
  | _ -> parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | L.EQ -> Some Expr.Eq
    | L.NEQ -> Some Expr.Ne
    | L.LT -> Some Expr.Lt
    | L.LE -> Some Expr.Le
    | L.GT -> Some Expr.Gt
    | L.GE -> Some Expr.Ge
    | _ -> None
  in
  match op with
  | Some op ->
    advance st;
    Expr.Binop (op, lhs, parse_add st)
  | None -> lhs

and parse_add st =
  let rec loop lhs =
    match peek st with
    | L.PLUS -> advance st; loop (Expr.Binop (Expr.Add, lhs, parse_mul st))
    | L.MINUS -> advance st; loop (Expr.Binop (Expr.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | L.STAR -> advance st; loop (Expr.Binop (Expr.Mul, lhs, parse_unary st))
    | L.SLASH -> advance st; loop (Expr.Binop (Expr.Div, lhs, parse_unary st))
    | L.KW "mod" ->
      advance st;
      loop (Expr.Binop (Expr.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | L.MINUS ->
    advance st;
    (* canonical form: a negated numeric literal is a constant *)
    (match peek st with
     | L.INT i -> advance st; Expr.int (-i)
     | L.FLOAT f -> advance st; Expr.float (-.f)
     | _ -> Expr.Unop (Expr.Neg, parse_unary st))
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | L.KW "true" -> advance st; Expr.bool true
  | L.KW "false" -> advance st; Expr.bool false
  | L.INT i -> advance st; Expr.int i
  | L.FLOAT f -> advance st; Expr.float f
  | L.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st L.RPAREN;
    e
  | L.IDENT name ->
    advance st;
    (match peek st with
     | L.LPAREN ->
       advance st;
       let rec args acc =
         if peek st = L.RPAREN then List.rev acc
         else
           let a = parse_expr st in
           match peek st with
           | L.COMMA -> advance st; args (a :: acc)
           | _ -> List.rev (a :: acc)
       in
       let arguments = args [] in
       expect st L.RPAREN;
       (* canonical forms: min/max/abs are operators of the base language,
          not library calls (keeps expressions comparable across parsers) *)
       (match name, arguments with
        | "min", [ a; b ] -> Expr.Binop (Expr.Min, a, b)
        | "max", [ a; b ] -> Expr.Binop (Expr.Max, a, b)
        | "abs", [ a ] -> Expr.Unop (Expr.Abs, a)
        | _ -> Expr.Call (name, arguments))
     | _ ->
       (match enum_of_literal st name with
        | Some e -> Expr.Const (Value.Enum (e.enum_name, name))
        | None -> Expr.var name))
  | t -> error st "expected an expression, found %s" (L.token_to_string t)

let rec parse_stmt st =
  match peek st with
  | L.KW "send" ->
    advance st;
    let target = ident st in
    let e = parse_expr st in
    expect st L.SEMI;
    Ascet_ast.Send (target, e)
  | L.KW "if" ->
    advance st;
    let cond = parse_expr st in
    expect st L.LBRACE;
    let then_s = parse_stmts st in
    expect st L.RBRACE;
    let else_s =
      match peek st with
      | L.KW "else" ->
        advance st;
        expect st L.LBRACE;
        let s = parse_stmts st in
        expect st L.RBRACE;
        s
      | _ -> []
    in
    Ascet_ast.If (cond, then_s, else_s)
  | L.IDENT target ->
    advance st;
    expect st L.ASSIGN;
    let e = parse_expr st in
    expect st L.SEMI;
    Ascet_ast.Assign (target, e)
  | t -> error st "expected a statement, found %s" (L.token_to_string t)

and parse_stmts st =
  if peek st = L.RBRACE then []
  else
    let s = parse_stmt st in
    s :: parse_stmts st

let parse_process st =
  let name = ident st in
  expect_kw st "on";
  let task = ident st in
  expect st L.LBRACE;
  let rec locals acc =
    match peek st with
    | L.KW "local" ->
      advance st;
      let lname = ident st in
      expect st L.COLON;
      let ty = parse_type st in
      expect st L.EQ;
      let init = parse_literal st in
      expect st L.SEMI;
      locals ((lname, ty, init) :: acc)
    | _ -> List.rev acc
  in
  let proc_locals = locals [] in
  let body = parse_stmts st in
  expect st L.RBRACE;
  { Ascet_ast.proc_name = name; proc_task = task; proc_locals;
    proc_body = body }

let kind_of_kw = function
  | "input" -> Some Ascet_ast.Input
  | "output" -> Some Ascet_ast.Output
  | "message" -> Some Ascet_ast.Message
  | "flag" -> Some Ascet_ast.Flag
  | _ -> None

let parse st =
  expect_kw st "module";
  let mod_name = ident st in
  let enums = ref [] and globals = ref [] in
  let tasks = ref [] and processes = ref [] in
  let rec decls () =
    match peek st with
    | L.EOF -> ()
    | L.KW "enum" ->
      advance st;
      let name = ident st in
      expect st L.LBRACE;
      let rec lits acc =
        let l = ident st in
        match peek st with
        | L.COMMA -> advance st; lits (l :: acc)
        | _ -> List.rev (l :: acc)
      in
      let literals = lits [] in
      expect st L.RBRACE;
      let decl = { Dtype.enum_name = name; literals } in
      enums := decl :: !enums;
      st.enums <- decl :: st.enums;
      decls ()
    | L.KW "task" ->
      advance st;
      let name = ident st in
      expect_kw st "period";
      let period = int_lit st in
      tasks := { Ascet_ast.task_name = name; period_ms = period } :: !tasks;
      decls ()
    | L.KW "process" ->
      advance st;
      processes := parse_process st :: !processes;
      decls ()
    | L.KW kw ->
      (match kind_of_kw kw with
       | Some kind ->
         advance st;
         let name = ident st in
         expect st L.COLON;
         let ty = parse_type st in
         expect st L.EQ;
         let init = parse_literal st in
         globals :=
           { Ascet_ast.g_name = name; g_kind = kind; g_type = ty;
             g_init = init }
           :: !globals;
         decls ()
       | None -> error st "unexpected keyword %s" kw)
    | t -> error st "unexpected token %s" (L.token_to_string t)
  in
  decls ();
  { Ascet_ast.mod_name;
    enums = List.rev !enums;
    globals = List.rev !globals;
    tasks = List.rev !tasks;
    processes = List.rev !processes }

let parse string_src =
  let st = { tokens = L.tokenize string_src; enums = [] } in
  parse st

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src
