open Automode_core

exception Run_error of string

let run_error fmt = Format.kasprintf (fun s -> raise (Run_error s)) fmt

type state = (string * Value.t) list

let init (m : Ascet_ast.t) =
  List.map (fun (g : Ascet_ast.global) -> (g.g_name, g.g_init)) m.globals

let read_global state name =
  match List.assoc_opt name state with
  | Some v -> v
  | None -> raise Not_found

let eval_expr env e =
  let msg, _ = Expr.step ~tick:0 ~env e (Expr.init_state e) in
  match msg with
  | Value.Present v -> v
  | Value.Absent -> run_error "expression %s evaluated to absent" (Expr.to_string e)

let run_process (p : Ascet_ast.process) globals =
  let locals =
    ref (List.map (fun (name, _, init) -> (name, init)) p.proc_locals)
  in
  let globals = ref globals in
  let env name : Value.message =
    match List.assoc_opt name !locals with
    | Some v -> Value.Present v
    | None ->
      (match List.assoc_opt name !globals with
       | Some v -> Value.Present v
       | None -> run_error "process %s: unknown name %s" p.proc_name name)
  in
  let rec exec (s : Ascet_ast.stmt) =
    match s with
    | Ascet_ast.Assign (target, e) ->
      let v = try eval_expr env e with Expr.Eval_error m -> run_error "%s" m in
      if not (List.mem_assoc target !locals) then
        run_error "process %s: assignment to unknown local %s" p.proc_name
          target;
      locals := (target, v) :: List.remove_assoc target !locals
    | Ascet_ast.Send (target, e) ->
      let v = try eval_expr env e with Expr.Eval_error m -> run_error "%s" m in
      if not (List.mem_assoc target !globals) then
        run_error "process %s: send to unknown global %s" p.proc_name target;
      globals := (target, v) :: List.remove_assoc target !globals
    | Ascet_ast.If (cond, then_s, else_s) ->
      let v =
        try eval_expr env cond with Expr.Eval_error m -> run_error "%s" m
      in
      let branch =
        try if Value.truth v then then_s else else_s
        with Value.Type_error m -> run_error "%s" m
      in
      List.iter exec branch
  in
  List.iter exec p.proc_body;
  !globals

let step (m : Ascet_ast.t) ~inputs ~t_ms state =
  let state =
    List.fold_left
      (fun state (name, v) ->
        match Ascet_ast.find_global m name with
        | Some { Ascet_ast.g_kind = Ascet_ast.Input; _ } ->
          (name, v) :: List.remove_assoc name state
        | Some _ -> run_error "cannot drive non-input global %s" name
        | None -> run_error "unknown input global %s" name)
      state inputs
  in
  List.fold_left
    (fun state (task : Ascet_ast.task_decl) ->
      if t_ms mod task.period_ms = 0 then
        List.fold_left
          (fun state p -> run_process p state)
          state
          (Ascet_ast.processes_of_task m task.task_name)
      else state)
    state m.tasks

type input_fn = int -> (string * Value.t) list

let run m ~ticks ~inputs ~observe =
  let trace = Trace.make ~flows:observe in
  let rec go t state trace =
    if t >= ticks then trace
    else
      let state = step m ~inputs:(inputs t) ~t_ms:t state in
      let row =
        List.map
          (fun name ->
            match List.assoc_opt name state with
            | Some v -> (name, Value.Present v)
            | None -> (name, Value.Absent))
          observe
      in
      go (t + 1) state (Trace.record trace row)
  in
  go 0 (init m) trace
