(** Abstract syntax of the ASCET-SD-like substrate (paper Secs. 3.4, 5).

    The paper's case study reengineers "a detailed ASCET-SD model" of a
    gasoline engine controller; the AutoMoDe prototype also {e generates}
    ASCET-SD projects per ECU.  ASCET-SD itself is a closed commercial
    tool, so this substrate reimplements the features those two code
    paths rely on (DESIGN.md, substitution table):

    - modules with {e processes} bound to periodic tasks,
    - global {e messages} (shared variables) for inter-process
      communication, some of which are {e flags} encoding implicit
      operation modes,
    - sequential statement bodies with If-Then-Else control flow.

    Right-hand-side expressions reuse the memoryless fragment of
    {!Automode_core.Expr} (no [Pre]/[When]/[Current]); persistent state
    lives in the global messages. *)

open Automode_core

type global_kind =
  | Message  (** ordinary inter-process message *)
  | Flag     (** mode-flag candidate (bool/enum written by mode logic) *)
  | Input    (** environment input (sensor) *)
  | Output   (** environment output (actuator) *)

type global = {
  g_name : string;
  g_kind : global_kind;
  g_type : Dtype.t;
  g_init : Value.t;
}

type stmt =
  | Assign of string * Expr.t       (** [local := expr] *)
  | Send of string * Expr.t         (** write a global message *)
  | If of Expr.t * stmt list * stmt list

type process = {
  proc_name : string;
  proc_task : string;
  proc_locals : (string * Dtype.t * Value.t) list;
  proc_body : stmt list;
}

type task_decl = { task_name : string; period_ms : int }

type t = {
  mod_name : string;
  enums : Dtype.enum_decl list;
  globals : global list;
  tasks : task_decl list;
  processes : process list;
}

val find_global : t -> string -> global option
val find_process : t -> string -> process option
val find_task : t -> string -> task_decl option
val find_enum : t -> string -> Dtype.enum_decl option

val processes_of_task : t -> string -> process list
(** In declaration order (= execution order within a task activation). *)

val globals_read : process -> string list
(** Global names read anywhere in the process body (no duplicates). *)

val globals_written : process -> string list
(** Global names written by [Send] (no duplicates). *)

val check : t -> string list
(** Well-formedness: unique names; processes reference declared tasks;
    [Send] targets declared globals of matching type kind ([Input]
    globals are never written by processes); locals don't shadow
    globals; expressions are memoryless and reference declared names;
    positive task periods. *)
