lib/ascet/ascet_interp.mli: Ascet_ast Automode_core Trace Value
