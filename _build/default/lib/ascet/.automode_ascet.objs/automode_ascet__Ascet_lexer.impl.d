lib/ascet/ascet_lexer.ml: List Printf String
