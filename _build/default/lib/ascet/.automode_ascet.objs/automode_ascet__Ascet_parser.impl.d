lib/ascet/ascet_parser.ml: Ascet_ast Ascet_lexer Automode_core Dtype Expr Format List String Value
