lib/ascet/ascet_parser.mli: Ascet_ast
