lib/ascet/ascet_ast.ml: Automode_core Dtype Expr Format List String Value
