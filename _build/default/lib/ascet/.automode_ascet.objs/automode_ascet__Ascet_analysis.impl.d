lib/ascet/ascet_analysis.ml: Ascet_ast Automode_core Dtype Expr Int List String
