lib/ascet/ascet_printer.ml: Ascet_ast Automode_core Dtype Expr Float Format List String Value
