lib/ascet/ascet_interp.ml: Ascet_ast Automode_core Expr Format List Trace Value
