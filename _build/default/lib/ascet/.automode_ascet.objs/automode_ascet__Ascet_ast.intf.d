lib/ascet/ascet_ast.mli: Automode_core Dtype Expr Value
