lib/ascet/ascet_analysis.mli: Ascet_ast Automode_core Expr
