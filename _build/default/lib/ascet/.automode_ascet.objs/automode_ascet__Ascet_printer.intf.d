lib/ascet/ascet_printer.mli: Ascet_ast Automode_core Format
