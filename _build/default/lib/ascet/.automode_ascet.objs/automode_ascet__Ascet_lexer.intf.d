lib/ascet/ascet_lexer.mli:
