open Automode_core

let binop_surface = function
  | Expr.Add -> "+" | Expr.Sub -> "-" | Expr.Mul -> "*" | Expr.Div -> "/"
  | Expr.Mod -> "mod"
  | Expr.And -> "and" | Expr.Or -> "or"
  | Expr.Eq -> "=" | Expr.Ne -> "/=" | Expr.Lt -> "<" | Expr.Le -> "<="
  | Expr.Gt -> ">" | Expr.Ge -> ">="
  | Expr.Min -> "min" | Expr.Max -> "max"

let pp_value ppf (v : Value.t) =
  match v with
  | Value.Float f ->
    (* keep a decimal point so the lexer reads it back as a float *)
    if Float.is_integer f then Format.fprintf ppf "%.1f" f
    else Format.fprintf ppf "%g" f
  | Value.Bool _ | Value.Int _ | Value.Enum _ | Value.Tuple _ ->
    Value.pp ppf v

let rec pp_expr ppf (e : Expr.t) =
  match e with
  | Expr.Const v -> pp_value ppf v
  | Expr.Var name -> Format.pp_print_string ppf name
  | Expr.Unop (Expr.Not, e) -> Format.fprintf ppf "(not %a)" pp_expr e
  | Expr.Unop (Expr.Neg, e) -> Format.fprintf ppf "(-%a)" pp_expr e
  | Expr.Unop (Expr.Abs, e) -> Format.fprintf ppf "abs(%a)" pp_expr e
  | Expr.Binop ((Expr.Min | Expr.Max) as op, a, b) ->
    Format.fprintf ppf "%s(%a, %a)"
      (match op with Expr.Min -> "min" | _ -> "max")
      pp_expr a pp_expr b
  | Expr.Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_surface op) pp_expr b
  | Expr.If (c, a, b) ->
    (* the surface language has no if-expression; encode via select *)
    Format.fprintf ppf "select(%a, %a, %a)" pp_expr c pp_expr a pp_expr b
  | Expr.Call (name, args) ->
    Format.fprintf ppf "%s(%a)" name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_expr)
      args
  | Expr.Pre _ | Expr.When _ | Expr.Current _ | Expr.Is_present _ ->
    invalid_arg "Ascet_printer: memory/clock operators have no ASCET syntax"

let indent_str n = String.make (n * 2) ' '

let rec pp_stmt ~indent ppf (s : Ascet_ast.stmt) =
  let pad = indent_str indent in
  match s with
  | Ascet_ast.Assign (target, e) ->
    Format.fprintf ppf "%s%s := %a;@\n" pad target pp_expr e
  | Ascet_ast.Send (target, e) ->
    Format.fprintf ppf "%ssend %s %a;@\n" pad target pp_expr e
  | Ascet_ast.If (cond, then_s, else_s) ->
    Format.fprintf ppf "%sif %a {@\n" pad pp_expr cond;
    List.iter (pp_stmt ~indent:(indent + 1) ppf) then_s;
    if else_s = [] then Format.fprintf ppf "%s}@\n" pad
    else begin
      Format.fprintf ppf "%s} else {@\n" pad;
      List.iter (pp_stmt ~indent:(indent + 1) ppf) else_s;
      Format.fprintf ppf "%s}@\n" pad
    end

let kind_kw = function
  | Ascet_ast.Message -> "message"
  | Ascet_ast.Flag -> "flag"
  | Ascet_ast.Input -> "input"
  | Ascet_ast.Output -> "output"

let pp ppf (m : Ascet_ast.t) =
  Format.fprintf ppf "module %s@\n@\n" m.mod_name;
  List.iter
    (fun (e : Dtype.enum_decl) ->
      Format.fprintf ppf "enum %s { %s }@\n" e.enum_name
        (String.concat ", " e.literals))
    m.enums;
  if m.enums <> [] then Format.pp_print_newline ppf ();
  List.iter
    (fun (g : Ascet_ast.global) ->
      Format.fprintf ppf "%s %s : %s = %a@\n" (kind_kw g.g_kind) g.g_name
        (Dtype.to_string g.g_type)
        pp_value g.g_init)
    m.globals;
  if m.globals <> [] then Format.pp_print_newline ppf ();
  List.iter
    (fun (t : Ascet_ast.task_decl) ->
      Format.fprintf ppf "task %s period %d@\n" t.task_name t.period_ms)
    m.tasks;
  if m.tasks <> [] then Format.pp_print_newline ppf ();
  List.iter
    (fun (p : Ascet_ast.process) ->
      Format.fprintf ppf "process %s on %s {@\n" p.proc_name p.proc_task;
      List.iter
        (fun (name, ty, init) ->
          Format.fprintf ppf "  local %s : %s = %a;@\n" name
            (Dtype.to_string ty) pp_value init)
        p.proc_locals;
      List.iter (pp_stmt ~indent:1 ppf) p.proc_body;
      Format.fprintf ppf "}@\n@\n")
    m.processes

let to_string m = Format.asprintf "%a" pp m
