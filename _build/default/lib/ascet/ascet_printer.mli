(** Pretty-printer of the textual ASCET-like format.  Round-trips with
    {!Ascet_parser}: parsing the printed form yields an equal module. *)

val pp_expr : Format.formatter -> Automode_core.Expr.t -> unit
(** ASCET surface syntax of the memoryless expression fragment. *)

val pp_stmt : indent:int -> Format.formatter -> Ascet_ast.stmt -> unit
val pp : Format.formatter -> Ascet_ast.t -> unit
val to_string : Ascet_ast.t -> string
