(** Structural analysis of ASCET-like models for white-box reengineering
    (paper Secs. 4, 5).

    The paper's central case-study observation: ASCET processes encode
    operation modes {e implicitly}, as If-Then-Else over flag variables
    emitted by a central component; AutoMoDe MTDs make them explicit.
    This module finds those flags and the implicit mode structure. *)

open Automode_core

val declared_flags : Ascet_ast.t -> string list

val inferred_flags : Ascet_ast.t -> string list
(** Mode-flag candidates by structure (DESIGN.md decision 5): bool- or
    enum-typed non-input globals whose every read occurrence is inside
    an if-condition.  Declared [Flag] globals are included. *)

val flag_readers : Ascet_ast.t -> string -> string list
(** Processes reading the given global. *)

val flag_writers : Ascet_ast.t -> string -> string list
(** Processes sending to the given global. *)

val central_flag_emitters : Ascet_ast.t -> (string * int) list
(** Processes writing more than one flag, with the flag count — the
    paper's "centralized software component emits a large number of
    flags" smell, sorted by count descending. *)

val process_dataflow : Ascet_ast.t -> (string * string * string) list
(** Data-flow edges (writer process, global, reader process). *)

type mode_split = {
  split_condition : Expr.t;        (** over flags only *)
  then_branch : Ascet_ast.stmt list;
  else_branch : Ascet_ast.stmt list;
  prefix : Ascet_ast.stmt list;    (** flag-independent statements before the split *)
}

val implicit_modes :
  flags:string list -> Ascet_ast.process -> mode_split option
(** Detect the implicit two-mode structure of a process: an optional
    prefix of statements that don't read flags, followed by a top-level
    [If] whose condition reads {e only} flags, with no trailing
    statements.  (Nested splits inside the branches are found by
    re-applying the function to the branch bodies via
    {!val:implicit_modes_of_body}.) *)

val implicit_modes_of_body :
  flags:string list -> Ascet_ast.stmt list -> mode_split option

val count_flag_conditionals : flags:string list -> Ascet_ast.t -> int
(** Total number of [If] statements whose condition reads at least one
    flag — the "implicit mode" count reported by the case study. *)
