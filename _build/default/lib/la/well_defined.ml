open Automode_core

type target = {
  target_name : string;
  needs_delay : src_period:int -> dst_period:int -> bool;
}

let osek_fixed_priority =
  { target_name = "OSEK fixed-priority preemptive";
    needs_delay = (fun ~src_period ~dst_period -> src_period > dst_period) }

let time_triggered =
  { target_name = "time-triggered (TDMA)";
    needs_delay = (fun ~src_period ~dst_period -> src_period <> dst_period) }

type violation = {
  v_channel : Model.channel;
  v_src_period : int;
  v_dst_period : int;
  v_reason : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "channel %s: %s (src %dus, dst %dus)"
    v.v_channel.Model.ch_name v.v_reason v.v_src_period v.v_dst_period

let check ~target ccd =
  List.filter_map
    (fun (ch, src_p, dst_p) ->
      match src_p, dst_p with
      | Some src_period, Some dst_period ->
        if
          target.needs_delay ~src_period ~dst_period
          && not ch.Model.ch_delayed
        then
          Some
            { v_channel = ch;
              v_src_period = src_period;
              v_dst_period = dst_period;
              v_reason =
                Printf.sprintf "missing delay operator required by %s"
                  target.target_name }
        else None
      | None, _ | _, None -> None)
    (Ccd.channel_rates ccd)

let dst_default_init ccd (ch : Model.channel) =
  match ch.Model.ch_dst.ep_comp with
  | None -> None
  | Some cname ->
    Option.bind (Ccd.find_cluster ccd cname) (fun c ->
        Option.bind
          (List.find_opt
             (fun (p : Model.port) ->
               String.equal p.port_name ch.Model.ch_dst.ep_port)
             c.Cluster.ports)
          (fun p -> Option.map Dtype.default_value p.port_type))

let repair ~target ccd =
  let violating =
    List.map (fun v -> v.v_channel.Model.ch_name) (check ~target ccd)
  in
  let count = List.length violating in
  let channels =
    List.map
      (fun (ch : Model.channel) ->
        if List.mem ch.ch_name violating then
          { ch with
            ch_delayed = true;
            ch_init =
              (match ch.ch_init with
               | Some _ as i -> i
               | None -> dst_default_init ccd ch) }
        else ch)
      ccd.Ccd.channels
  in
  ({ ccd with Ccd.channels }, count)
