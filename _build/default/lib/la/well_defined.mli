(** Target-parametric well-definedness conditions for CCDs (paper
    Sec. 3.3).

    "As an example, consider an OSEK-conformant operating system as a
    target platform, with inter-task communication using data integrity
    mechanisms and fixed-priority, preemptive scheduling.  In this
    framework, communication from 'slower-rate' clusters to a
    'faster-rate' cluster necessitates the introduction of at least one
    delay operator in the direction of data flow.  On the other hand,
    communication in the opposite direction does not require
    introduction of delays.  Consequently, CCD well-definedness
    conditions may be adapted to the specific target architecture." *)

open Automode_core

type target = {
  target_name : string;
  needs_delay : src_period:int -> dst_period:int -> bool;
      (** must a channel between ports of these periods carry a delay? *)
}

val osek_fixed_priority : target
(** The paper's OSEK instance: slow-to-fast channels ([src_period >
    dst_period]) require a delay; fast-to-slow and same-rate do not. *)

val time_triggered : target
(** A stricter, TDMA-style instance used as an ablation: {e every}
    cross-rate channel requires a delay. *)

type violation = {
  v_channel : Model.channel;
  v_src_period : int;
  v_dst_period : int;
  v_reason : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check : target:target -> Ccd.t -> violation list
(** All channels violating the target's delay conditions.  Channels
    whose end periods are unknown (boundary or aperiodic) are skipped. *)

val repair : target:target -> Ccd.t -> Ccd.t * int
(** Insert the missing delay operators ([ch_delayed = true], with the
    destination type's default as initial value when the type is known);
    returns the repaired CCD and the number of channels changed. *)
