type ecu = { ecu_name : string; speed_factor : float }

type task = {
  task_name : string;
  task_ecu : string;
  period_us : int;
  priority : int;
  offset_us : int;
}

type bus = { bus_name : string; bitrate : int }

type frame_slot = {
  slot_name : string;
  slot_bus : string;
  can_id : int;
  capacity_bits : int;
  slot_period_us : int;
}

type t = {
  ta_name : string;
  ecus : ecu list;
  tasks : task list;
  buses : bus list;
  frames : frame_slot list;
}

let make ?(buses = []) ?(frames = []) ~name ~ecus ~tasks () =
  { ta_name = name; ecus; tasks; buses; frames }

let find_task ta name =
  List.find_opt (fun t -> String.equal t.task_name name) ta.tasks

let find_ecu ta name =
  List.find_opt (fun e -> String.equal e.ecu_name name) ta.ecus

let tasks_of_ecu ta ecu =
  List.filter (fun t -> String.equal t.task_ecu ecu) ta.tasks

let frames_of_bus ta bus =
  List.filter (fun f -> String.equal f.slot_bus bus) ta.frames

let duplicates names =
  let sorted = List.sort String.compare names in
  let rec go = function
    | a :: (b :: _ as rest) -> if String.equal a b then a :: go rest else go rest
    | [ _ ] | [] -> []
  in
  List.sort_uniq String.compare (go sorted)

let check ta =
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  List.iter (fun n -> add "duplicate ECU %s" n)
    (duplicates (List.map (fun e -> e.ecu_name) ta.ecus));
  List.iter (fun n -> add "duplicate task %s" n)
    (duplicates (List.map (fun t -> t.task_name) ta.tasks));
  List.iter (fun n -> add "duplicate bus %s" n)
    (duplicates (List.map (fun b -> b.bus_name) ta.buses));
  List.iter (fun n -> add "duplicate frame %s" n)
    (duplicates (List.map (fun f -> f.slot_name) ta.frames));
  List.iter
    (fun t ->
      if find_ecu ta t.task_ecu = None then
        add "task %s references unknown ECU %s" t.task_name t.task_ecu;
      if t.period_us <= 0 then add "task %s has non-positive period" t.task_name;
      if t.offset_us < 0 then add "task %s has negative offset" t.task_name)
    ta.tasks;
  List.iter
    (fun e ->
      if e.speed_factor <= 0. then
        add "ECU %s has non-positive speed factor" e.ecu_name;
      let prios = List.map (fun t -> t.priority) (tasks_of_ecu ta e.ecu_name) in
      if List.length (List.sort_uniq Int.compare prios) <> List.length prios
      then add "ECU %s has duplicate task priorities" e.ecu_name)
    ta.ecus;
  List.iter
    (fun b ->
      if b.bitrate <= 0 then add "bus %s has non-positive bitrate" b.bus_name;
      let ids = List.map (fun f -> f.can_id) (frames_of_bus ta b.bus_name) in
      if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
        add "bus %s has duplicate CAN ids" b.bus_name)
    ta.buses;
  List.iter
    (fun f ->
      if List.for_all (fun b -> not (String.equal b.bus_name f.slot_bus)) ta.buses
      then add "frame %s references unknown bus %s" f.slot_name f.slot_bus;
      if f.capacity_bits <= 0 || f.capacity_bits > 64 then
        add "frame %s capacity %d outside 1..64 bits" f.slot_name
          f.capacity_bits;
      if f.slot_period_us <= 0 then
        add "frame %s has non-positive period" f.slot_name)
    ta.frames;
  List.rev !problems

let pp ppf ta =
  Format.fprintf ppf "TA %s@\n" ta.ta_name;
  List.iter
    (fun e -> Format.fprintf ppf "  ecu %s (speed %.2f)@\n" e.ecu_name e.speed_factor)
    ta.ecus;
  List.iter
    (fun t ->
      Format.fprintf ppf "  task %s on %s T=%dus prio=%d@\n" t.task_name
        t.task_ecu t.period_us t.priority)
    ta.tasks;
  List.iter
    (fun b -> Format.fprintf ppf "  bus %s %d bit/s@\n" b.bus_name b.bitrate)
    ta.buses;
  List.iter
    (fun f ->
      Format.fprintf ppf "  frame %s on %s id=0x%X cap=%dbit T=%dus@\n"
        f.slot_name f.slot_bus f.can_id f.capacity_bits f.slot_period_us)
    ta.frames
