open Automode_core

type word = Int8 | Int16 | Int32 | UInt8 | UInt16 | UInt32

type t =
  | Ibool
  | Iint of word
  | Ifloat32
  | Ifloat64
  | Ifixed of { container : word; scale : float; offset : float }
  | Ienum of Dtype.enum_decl * word

let word_name = function
  | Int8 -> "int8"
  | Int16 -> "int16"
  | Int32 -> "int32"
  | UInt8 -> "uint8"
  | UInt16 -> "uint16"
  | UInt32 -> "uint32"

let pp ppf = function
  | Ibool -> Format.pp_print_string ppf "bool8"
  | Iint w -> Format.pp_print_string ppf (word_name w)
  | Ifloat32 -> Format.pp_print_string ppf "float32"
  | Ifloat64 -> Format.pp_print_string ppf "float64"
  | Ifixed { container; scale; offset } ->
    Format.fprintf ppf "fixed<%s,%g,%g>" (word_name container) scale offset
  | Ienum (e, w) -> Format.fprintf ppf "%s:%s" e.enum_name (word_name w)

let to_string ty = Format.asprintf "%a" pp ty

let equal a b =
  match a, b with
  | Ibool, Ibool | Ifloat32, Ifloat32 | Ifloat64, Ifloat64 -> true
  | Iint w1, Iint w2 -> w1 = w2
  | Ifixed f1, Ifixed f2 ->
    f1.container = f2.container
    && Float.equal f1.scale f2.scale
    && Float.equal f1.offset f2.offset
  | Ienum (e1, w1), Ienum (e2, w2) ->
    String.equal e1.enum_name e2.enum_name && w1 = w2
  | (Ibool | Iint _ | Ifloat32 | Ifloat64 | Ifixed _ | Ienum _), _ -> false

let word_bits = function
  | Int8 | UInt8 -> 8
  | Int16 | UInt16 -> 16
  | Int32 | UInt32 -> 32

let bit_width = function
  | Ibool -> 8
  | Iint w -> word_bits w
  | Ifloat32 -> 32
  | Ifloat64 -> 64
  | Ifixed { container; _ } -> word_bits container
  | Ienum (_, w) -> word_bits w

let word_range = function
  | Int8 -> (-128, 127)
  | Int16 -> (-32768, 32767)
  | Int32 -> (-2147483648, 2147483647)
  | UInt8 -> (0, 255)
  | UInt16 -> (0, 65535)
  | UInt32 -> (0, 4294967295)

let refines impl (abstract : Dtype.t) =
  match impl, abstract with
  | Ibool, Dtype.Tbool -> true
  | Iint _, Dtype.Tint -> true
  | (Ifloat32 | Ifloat64 | Ifixed _), (Dtype.Tfloat | Dtype.Tint) -> true
  | Ienum (e, w), Dtype.Tenum e' ->
    String.equal e.enum_name e'.enum_name
    && List.length e'.literals - 1 <= snd (word_range w)
  | (Ibool | Iint _ | Ifloat32 | Ifloat64 | Ifixed _ | Ienum _), _ -> false

let physical_range = function
  | Ibool | Ienum _ -> None
  | Iint w ->
    let lo, hi = word_range w in
    Some (float_of_int lo, float_of_int hi)
  | Ifloat32 -> Some (-3.4e38, 3.4e38)
  | Ifloat64 -> Some (-.Float.max_float, Float.max_float)
  | Ifixed { container; scale; offset } ->
    let lo, hi = word_range container in
    Some ((scale *. float_of_int lo) +. offset, (scale *. float_of_int hi) +. offset)

let quantization_step = function
  | Iint _ -> Some 1.
  | Ifixed { scale; _ } -> Some scale
  | Ibool | Ifloat32 | Ifloat64 | Ienum _ -> None

exception Encode_error of string

let encode_error fmt = Format.kasprintf (fun s -> raise (Encode_error s)) fmt

let saturate w raw =
  let lo, hi = word_range w in
  Stdlib.max lo (Stdlib.min hi raw)

let round_to_int f = int_of_float (Float.round f)

let encode impl (v : Value.t) =
  match impl, v with
  | Ibool, Value.Bool b -> Value.Int (if b then 1 else 0)
  | Iint w, Value.Int i -> Value.Int (saturate w i)
  | Iint w, Value.Float f -> Value.Int (saturate w (round_to_int f))
  | (Ifloat32 | Ifloat64), Value.Float f -> Value.Float f
  | (Ifloat32 | Ifloat64), Value.Int i -> Value.Float (float_of_int i)
  | Ifixed { container; scale; offset }, (Value.Float _ | Value.Int _) ->
    let f = Value.to_float v in
    let raw = round_to_int ((f -. offset) /. scale) in
    Value.Int (saturate container raw)
  | Ienum (e, w), Value.Enum (name, lit) when String.equal name e.enum_name ->
    let rec index i = function
      | [] -> encode_error "literal %s not in enum %s" lit e.enum_name
      | l :: rest -> if String.equal l lit then i else index (i + 1) rest
    in
    Value.Int (saturate w (index 0 e.literals))
  | _, _ ->
    encode_error "cannot encode %s as %s" (Value.to_string v) (to_string impl)

let decode impl (v : Value.t) =
  match impl, v with
  | Ibool, Value.Int i -> Value.Bool (i <> 0)
  | Iint _, Value.Int i -> Value.Int i
  | (Ifloat32 | Ifloat64), Value.Float f -> Value.Float f
  | Ifixed { scale; offset; _ }, Value.Int raw ->
    Value.Float ((scale *. float_of_int raw) +. offset)
  | Ienum (e, _), Value.Int i ->
    (match List.nth_opt e.literals i with
     | Some lit -> Value.Enum (e.enum_name, lit)
     | None -> encode_error "raw %d out of enum %s" i e.enum_name)
  | _, _ ->
    encode_error "cannot decode %s as %s" (Value.to_string v) (to_string impl)

let quantization_error_bound impl =
  Option.map (fun step -> step /. 2.) (quantization_step impl)

let fixed_for_range ?(container = Int16) ~lo ~hi () =
  if hi <= lo then invalid_arg "Impl_type.fixed_for_range: empty interval";
  let rlo, rhi = word_range container in
  let span = hi -. lo in
  let raw_span = float_of_int rhi -. float_of_int rlo in
  let scale = span /. raw_span in
  let offset = lo -. (scale *. float_of_int rlo) in
  Ifixed { container; scale; offset }

let smallest_container ~lo ~hi ~resolution =
  if hi <= lo || resolution <= 0. then None
  else
    let fits container =
      let rlo, rhi = word_range container in
      let raw_span = float_of_int rhi -. float_of_int rlo in
      (hi -. lo) /. raw_span <= resolution
    in
    let candidates = [ Int8; Int16; Int32 ] in
    match List.find_opt fits candidates with
    | Some container -> Some (fixed_for_range ~container ~lo ~hi ())
    | None -> None
