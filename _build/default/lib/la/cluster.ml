open Automode_core

type t = {
  cluster_name : string;
  ports : Model.port list;
  body : Model.network;
  impl_types : (string * Impl_type.t) list;
}

let make ?(impl_types = []) ~name ~ports ~body () =
  { cluster_name = name; ports; body; impl_types }

let to_component c =
  Model.component c.cluster_name ~ports:c.ports ~behavior:(Model.B_dfd c.body)

let of_component ?(impl_types = []) (comp : Model.component) =
  match comp.comp_behavior with
  | Model.B_dfd body | Model.B_ssd body ->
    let untyped =
      List.filter
        (fun (p : Model.port) -> p.port_type = None)
        comp.comp_ports
    in
    if untyped <> [] then
      Error
        (Printf.sprintf "cluster %s: untyped ports %s" comp.comp_name
           (String.concat ", "
              (List.map (fun (p : Model.port) -> p.port_name) untyped)))
    else
      Ok
        { cluster_name = comp.comp_name;
          ports = comp.comp_ports;
          body;
          impl_types }
  | Model.B_exprs _ | Model.B_std _ | Model.B_mtd _ | Model.B_unspecified ->
    Error
      (Printf.sprintf "cluster %s: behavior must be a network"
         comp.comp_name)

let rec expr_cost : Expr.t -> int = function
  | Expr.Const _ | Expr.Var _ | Expr.Is_present _ -> 1
  | Expr.Unop (_, e) | Expr.When (e, _) | Expr.Pre (_, e) | Expr.Current (_, e)
    -> 1 + expr_cost e
  | Expr.Binop (_, a, b) -> 1 + expr_cost a + expr_cost b
  | Expr.If (c, a, b) -> 1 + expr_cost c + expr_cost a + expr_cost b
  | Expr.Call (_, args) ->
    2 + List.fold_left (fun acc a -> acc + expr_cost a) 0 args

let rec behavior_cost : Model.behavior -> int = function
  | Model.B_exprs outs ->
    List.fold_left (fun acc (_, e) -> acc + expr_cost e) 0 outs
  | Model.B_std std ->
    List.fold_left
      (fun acc (t : Model.std_transition) ->
        acc + expr_cost t.st_guard
        + List.fold_left (fun a (_, e) -> a + expr_cost e) 0 t.st_outputs
        + List.fold_left (fun a (_, e) -> a + expr_cost e) 0 t.st_updates)
      1 std.std_transitions
  | Model.B_mtd mtd ->
    List.fold_left
      (fun acc (t : Model.mtd_transition) -> acc + expr_cost t.mt_guard)
      1 mtd.mtd_transitions
    + List.fold_left
        (fun acc (m : Model.mode) -> acc + behavior_cost m.mode_behavior)
        0 mtd.mtd_modes
  | Model.B_dfd net | Model.B_ssd net -> network_cost net
  | Model.B_unspecified -> 1

and network_cost (net : Model.network) =
  List.length net.net_channels
  + List.fold_left
      (fun acc (c : Model.component) -> acc + behavior_cost c.comp_behavior)
      0 net.net_components

let wcet_estimate c = Stdlib.max 1 (network_cost c.body)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let period c =
  let rec go acc = function
    | [] -> Some acc
    | (p : Model.port) :: rest ->
      (match Clock.canon p.port_clock with
       | Clock.Periodic { period; _ } -> go (gcd acc period) rest
       | Clock.Aperiodic _ -> None)
  in
  match c.ports with
  | [] -> Some 1
  | (p : Model.port) :: rest ->
    (match Clock.canon p.port_clock with
     | Clock.Periodic { period; _ } -> go period rest
     | Clock.Aperiodic _ -> None)

let check c =
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun (p : Model.port) ->
      (match p.port_type with
       | None -> add "port %s is not statically typed" p.port_name
       | Some abstract ->
         (match List.assoc_opt p.port_name c.impl_types with
          | Some impl when not (Impl_type.refines impl abstract) ->
            add "implementation type %s of port %s does not refine %s"
              (Impl_type.to_string impl) p.port_name
              (Dtype.to_string abstract)
          | Some _ | None -> ()));
      match Clock.canon p.port_clock with
      | Clock.Periodic _ -> ()
      | Clock.Aperiodic _ ->
        add "port %s has no explicit periodic frequency" p.port_name
      | exception Clock.Invalid_clock msg ->
        add "port %s: %s" p.port_name msg)
    c.ports;
  let comp = to_component c in
  List.iter
    (fun i -> add "%s" i.Network.issue_msg)
    (List.filter
       (fun (i : Network.issue) -> i.issue_severity = `Error)
       (Dfd.check ~enclosing:comp c.body));
  (* no recursive cluster definitions: a component named like a cluster
     inside the body would indicate nesting *)
  Model.iter_components
    (fun path (sub : Model.component) ->
      if path <> [] && String.equal sub.comp_name c.cluster_name then
        add "cluster %s nested inside itself" c.cluster_name)
    comp;
  List.rev !problems
