open Automode_core

(* The abstract clock's base tick is interpreted as 1 ms of physical time
   when confronting the Technical Architecture (whose quantities are in
   microseconds). *)
let us_per_tick = 1_000

type t = {
  ccd : Ccd.t;
  ta : Ta.t;
  cluster_task : (string * string) list;
  signal_frame : (string * string) list;
}

let make ~ccd ~ta ~cluster_task ?(signal_frame = []) () =
  { ccd; ta; cluster_task; signal_frame }

let ecu_of_cluster d cluster =
  Option.bind (List.assoc_opt cluster d.cluster_task) (fun task ->
      Option.map (fun (t : Ta.task) -> t.task_ecu) (Ta.find_task d.ta task))

let channel_endpoint_cluster (ep : Model.endpoint) = ep.ep_comp

let inter_ecu_channels d =
  List.filter
    (fun (ch : Model.channel) ->
      match
        ( channel_endpoint_cluster ch.ch_src,
          channel_endpoint_cluster ch.ch_dst )
      with
      | Some src, Some dst ->
        (match ecu_of_cluster d src, ecu_of_cluster d dst with
         | Some e1, Some e2 -> not (String.equal e1 e2)
         | None, _ | _, None -> false)
      | None, _ | _, None -> false)
    d.ccd.Ccd.channels

(* Width in bits of the signal on a channel: the source cluster port's
   implementation type if declared, else a default by abstract type. *)
let channel_width d (ch : Model.channel) =
  let default_width (ty : Dtype.t option) =
    match ty with
    | Some Dtype.Tbool -> 1
    | Some Dtype.Tint -> 16
    | Some Dtype.Tfloat -> 32
    | Some (Dtype.Tenum e) ->
      let n = List.length e.literals in
      let rec bits k = if 1 lsl k >= n then k else bits (k + 1) in
      Stdlib.max 1 (bits 1)
    | Some (Dtype.Ttuple _) | None -> 32
  in
  match ch.ch_src.ep_comp with
  | None -> 32
  | Some cname ->
    (match Ccd.find_cluster d.ccd cname with
     | None -> 32
     | Some c ->
       (match List.assoc_opt ch.ch_src.ep_port c.Cluster.impl_types with
        | Some impl -> Impl_type.bit_width impl
        | None ->
          default_width
            (Option.bind
               (List.find_opt
                  (fun (p : Model.port) ->
                    String.equal p.port_name ch.ch_src.ep_port)
                  c.Cluster.ports)
               (fun p -> p.port_type))))

let channel_period_us d (ch : Model.channel) =
  let rates = Ccd.channel_rates d.ccd in
  match
    List.find_opt
      (fun ((c : Model.channel), _, _) -> String.equal c.ch_name ch.ch_name)
      rates
  with
  | Some (_, Some src_p, _) -> Some (src_p * us_per_tick)
  | Some (_, None, _) | None -> None

let find_frame d name =
  List.find_opt (fun (f : Ta.frame_slot) -> String.equal f.slot_name name)
    d.ta.Ta.frames

let check d =
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  List.iter (fun p -> add "TA: %s" p) (Ta.check d.ta);
  (* cluster -> task mapping *)
  List.iter
    (fun (c : Cluster.t) ->
      match List.assoc_opt c.cluster_name d.cluster_task with
      | None -> add "cluster %s is not mapped to any task" c.cluster_name
      | Some task_name ->
        (match Ta.find_task d.ta task_name with
         | None ->
           add "cluster %s mapped to unknown task %s" c.cluster_name task_name
         | Some task ->
           (match Cluster.period c with
            | None ->
              add "cluster %s has aperiodic ports; cannot check task rate"
                c.cluster_name
            | Some ticks ->
              let cluster_us = ticks * us_per_tick in
              if task.period_us > cluster_us then
                add
                  "cluster %s (period %dus) mapped to slower task %s (%dus)"
                  c.cluster_name cluster_us task_name task.period_us
              else if cluster_us mod task.period_us <> 0 then
                add "cluster %s period %dus not a multiple of task %s period %dus"
                  c.cluster_name cluster_us task_name task.period_us)))
    d.ccd.Ccd.clusters;
  let mapped_twice =
    let names = List.map fst d.cluster_task in
    List.length (List.sort_uniq String.compare names) <> List.length names
  in
  if mapped_twice then add "a cluster is mapped to several tasks";
  (* inter-ECU signals -> frames *)
  let inter = inter_ecu_channels d in
  List.iter
    (fun (ch : Model.channel) ->
      match List.assoc_opt ch.ch_name d.signal_frame with
      | None ->
        add "inter-ECU signal %s is not mapped to any frame" ch.ch_name
      | Some frame_name ->
        (match find_frame d frame_name with
         | None ->
           add "signal %s mapped to unknown frame %s" ch.ch_name frame_name
         | Some frame ->
           (match channel_period_us d ch with
            | Some signal_period when frame.slot_period_us > signal_period ->
              add "frame %s (%dus) slower than signal %s (%dus)"
                frame.slot_name frame.slot_period_us ch.ch_name signal_period
            | Some _ | None -> ())))
    inter;
  (* frame capacity: summed widths of the signals sharing a frame *)
  List.iter
    (fun (frame : Ta.frame_slot) ->
      let load =
        List.fold_left
          (fun acc (signal, fname) ->
            if String.equal fname frame.slot_name then
              match
                List.find_opt
                  (fun (ch : Model.channel) -> String.equal ch.ch_name signal)
                  d.ccd.Ccd.channels
              with
              | Some ch -> acc + channel_width d ch
              | None -> acc
            else acc)
          0 d.signal_frame
      in
      if load > frame.capacity_bits then
        add "frame %s overloaded: %d bits in %d bits capacity" frame.slot_name
          load frame.capacity_bits)
    d.ta.Ta.frames;
  List.rev !problems

let task_sets d =
  List.map
    (fun (ecu : Ta.ecu) ->
      let tasks =
        List.map
          (fun (task : Ta.task) ->
            let cost =
              List.fold_left
                (fun acc (cname, tname) ->
                  if String.equal tname task.task_name then
                    match Ccd.find_cluster d.ccd cname with
                    | Some c -> acc + Cluster.wcet_estimate c
                    | None -> acc
                  else acc)
                0 d.cluster_task
            in
            let wcet =
              Stdlib.max 1
                (int_of_float
                   (Float.ceil (float_of_int cost *. ecu.speed_factor)))
            in
            Automode_osek.Osek_task.make ~name:task.task_name
              ~period:task.period_us ~wcet ~priority:task.priority
              ~offset:task.offset_us ())
          (Ta.tasks_of_ecu d.ta ecu.ecu_name)
      in
      (ecu.ecu_name, tasks))
    d.ta.Ta.ecus

let bus_frames d =
  List.map
    (fun (bus : Ta.bus) ->
      let used (frame : Ta.frame_slot) =
        List.exists (fun (_, f) -> String.equal f frame.slot_name) d.signal_frame
      in
      let frames =
        List.filter_map
          (fun (frame : Ta.frame_slot) ->
            if not (used frame) then None
            else
              Some
                (Automode_osek.Can_bus.frame ~name:frame.slot_name
                   ~can_id:frame.can_id
                   ~payload_bytes:
                     (Stdlib.min 8 ((frame.capacity_bits + 7) / 8))
                   ~period:frame.slot_period_us ()))
          (Ta.frames_of_bus d.ta bus.bus_name)
      in
      (bus.bus_name, frames))
    d.ta.Ta.buses

let comm_matrix d =
  let entries =
    List.filter_map
      (fun (ch : Model.channel) ->
        match ch.ch_src.ep_comp, ch.ch_dst.ep_comp with
        | Some src, Some dst ->
          (match ecu_of_cluster d src, ecu_of_cluster d dst with
           | Some e1, Some e2 when not (String.equal e1 e2) ->
             Some
               (Automode_osek.Comm_matrix.entry ~signal:ch.ch_name ~sender:e1
                  ~receivers:[ e2 ]
                  ~size_bits:(channel_width d ch)
                  ?period_us:(channel_period_us d ch)
                  ())
           | Some _, Some _ | None, _ | _, None -> None)
        | None, _ | _, None -> None)
      d.ccd.Ccd.channels
  in
  { Automode_osek.Comm_matrix.entries }

let auto_assign ~ccd ~(ta : Ta.t) =
  (* slowest clusters first: they fit the most tasks, so place the
     constrained (fast) clusters while ECUs are still empty *)
  let clusters =
    List.filter_map
      (fun (c : Cluster.t) ->
        Option.map (fun p -> (p * us_per_tick, c)) (Cluster.period c))
      ccd.Ccd.clusters
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let utilization = Hashtbl.create 8 in
  List.iter
    (fun (e : Ta.ecu) -> Hashtbl.replace utilization e.ecu_name 0.)
    ta.Ta.ecus;
  List.filter_map
    (fun (cluster_us, (c : Cluster.t)) ->
      let adequate =
        List.filter
          (fun (t : Ta.task) ->
            t.period_us <= cluster_us && cluster_us mod t.period_us = 0)
          ta.Ta.tasks
      in
      let best =
        List.fold_left
          (fun acc (t : Ta.task) ->
            let u =
              try Hashtbl.find utilization t.task_ecu with Not_found -> 0.
            in
            match acc with
            | Some (_, u_best) when u_best <= u -> acc
            | Some _ | None -> Some (t, u))
          None adequate
      in
      match best with
      | None -> None
      | Some (task, _) ->
        let speed =
          match Ta.find_ecu ta task.task_ecu with
          | Some e -> e.speed_factor
          | None -> 1.
        in
        let cost =
          float_of_int (Cluster.wcet_estimate c) *. speed
          /. float_of_int task.period_us
        in
        Hashtbl.replace utilization task.task_ecu
          ((try Hashtbl.find utilization task.task_ecu with Not_found -> 0.)
          +. cost);
        Some (c.cluster_name, task.task_name))
    clusters

let auto_map_signals d =
  let unmapped =
    List.filter
      (fun (ch : Model.channel) ->
        List.assoc_opt ch.ch_name d.signal_frame = None)
      (inter_ecu_channels d)
  in
  let remaining_capacity frame =
    frame.Ta.capacity_bits
    - List.fold_left
        (fun acc (signal, fname) ->
          if String.equal fname frame.Ta.slot_name then
            match
              List.find_opt
                (fun (ch : Model.channel) -> String.equal ch.ch_name signal)
                d.ccd.Ccd.channels
            with
            | Some ch -> acc + channel_width d ch
            | None -> acc
          else acc)
        0 d.signal_frame
  in
  let mapping =
    List.fold_left
      (fun mapping (ch : Model.channel) ->
        let width = channel_width d ch in
        let period = channel_period_us d ch in
        let fits frame =
          let cap =
            remaining_capacity frame
            - List.fold_left
                (fun acc (signal, fname) ->
                  (* account for signals added in this fold *)
                  if
                    String.equal fname frame.Ta.slot_name
                    && List.assoc_opt signal d.signal_frame = None
                  then
                    match
                      List.find_opt
                        (fun (c : Model.channel) -> String.equal c.ch_name signal)
                        d.ccd.Ccd.channels
                    with
                    | Some c -> acc + channel_width d c
                    | None -> acc
                  else acc)
                0 mapping
          in
          cap >= width
          &&
          match period with
          | Some p -> frame.Ta.slot_period_us <= p
          | None -> true
        in
        (* prefer the slowest adequate frame so fast slots stay free for
           genuinely fast signals *)
        let candidates =
          List.sort
            (fun (a : Ta.frame_slot) b ->
              Int.compare b.slot_period_us a.slot_period_us)
            d.ta.Ta.frames
        in
        match List.find_opt fits candidates with
        | Some frame -> (ch.ch_name, frame.Ta.slot_name) :: mapping
        | None -> mapping)
      [] unmapped
  in
  { d with signal_frame = d.signal_frame @ List.rev mapping }

let pp ppf d =
  Format.fprintf ppf "deployment of CCD %s onto TA %s@\n" d.ccd.Ccd.ccd_name
    d.ta.Ta.ta_name;
  List.iter
    (fun (c, t) ->
      let ecu = Option.value (ecu_of_cluster d c) ~default:"?" in
      Format.fprintf ppf "  %-24s -> task %-16s (ECU %s)@\n" c t ecu)
    d.cluster_task;
  List.iter
    (fun (s, f) -> Format.fprintf ppf "  signal %-20s -> frame %s@\n" s f)
    d.signal_frame
