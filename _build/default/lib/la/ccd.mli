(** Cluster Communication Diagrams (paper Sec. 3.3).

    The top-level notation of the Logical Architecture: a {e flat}
    network of clusters (clusters may not be defined recursively by
    other CCDs) with statically typed, explicitly clocked interfaces.
    Channels may carry explicit delay operators — the knob the
    target-specific well-definedness conditions of {!Well_defined}
    reason about. *)

open Automode_core

type t = {
  ccd_name : string;
  clusters : Cluster.t list;
  channels : Model.channel list;
      (** endpoints name clusters; boundary endpoints are external
          sensors/actuators of the LA *)
  external_ports : Model.port list;
}

val make :
  ?external_ports:Model.port list -> name:string ->
  clusters:Cluster.t list -> channels:Model.channel list -> unit -> t

val to_component : t -> Model.component
(** View as a DFD-behavior component over the cluster components, for
    simulation and rendering.  Channel delay flags are preserved. *)

val find_cluster : t -> string -> Cluster.t option

val check : t -> string list
(** Structural conditions: per-cluster {!Cluster.check}, network
    well-formedness, flatness (cluster bodies may be hierarchical DFDs
    but never contain components that are themselves clusters of this
    CCD), and causality of the cluster graph. *)

val channel_rates :
  t -> (Model.channel * int option * int option) list
(** Each channel with the periods of its source and destination port
    clocks (μ-tick units; [None] for boundary or aperiodic ends). *)
