open Automode_core

type t = {
  ccd_name : string;
  clusters : Cluster.t list;
  channels : Model.channel list;
  external_ports : Model.port list;
}

let make ?(external_ports = []) ~name ~clusters ~channels () =
  { ccd_name = name; clusters; channels; external_ports }

let network ccd : Model.network =
  { net_name = ccd.ccd_name;
    net_components = List.map Cluster.to_component ccd.clusters;
    net_channels = ccd.channels }

let to_component ccd =
  Model.component ccd.ccd_name ~ports:ccd.external_ports
    ~behavior:(Model.B_dfd (network ccd))

let find_cluster ccd name =
  List.find_opt
    (fun (c : Cluster.t) -> String.equal c.cluster_name name)
    ccd.clusters

let check ccd =
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun (c : Cluster.t) ->
      List.iter (fun p -> add "cluster %s: %s" c.cluster_name p)
        (Cluster.check c))
    ccd.clusters;
  let net = network ccd in
  let enclosing = to_component ccd in
  List.iter
    (fun (i : Network.issue) ->
      match i.issue_severity with
      | `Error -> add "%s" i.issue_msg
      | `Warning -> ())
    (Network.check ~require_static_types:true ~enclosing net);
  (match Causality.check net with
   | Ok () -> ()
   | Error loops ->
     List.iter
       (fun loop ->
         add "instantaneous cluster loop: %s (insert a delay operator)"
           (String.concat " -> " loop))
       loops);
  (* flatness: no cluster of this CCD may appear inside another's body *)
  let cluster_names =
    List.map (fun (c : Cluster.t) -> c.cluster_name) ccd.clusters
  in
  List.iter
    (fun (c : Cluster.t) ->
      Model.iter_components
        (fun path (sub : Model.component) ->
          if path <> [] && List.mem sub.comp_name cluster_names then
            add "CCD not flat: cluster %s nested inside %s" sub.comp_name
              c.cluster_name)
        (Cluster.to_component c))
    ccd.clusters;
  List.rev !problems

let port_period (p : Model.port) =
  match Clock.canon p.port_clock with
  | Clock.Periodic { period; _ } -> Some period
  | Clock.Aperiodic _ -> None
  | exception Clock.Invalid_clock _ -> None

let endpoint_period ccd (ep : Model.endpoint) =
  match ep.ep_comp with
  | None ->
    Option.bind
      (List.find_opt
         (fun (p : Model.port) -> String.equal p.port_name ep.ep_port)
         ccd.external_ports)
      port_period
  | Some cname ->
    Option.bind (find_cluster ccd cname) (fun c ->
        Option.bind
          (List.find_opt
             (fun (p : Model.port) -> String.equal p.port_name ep.ep_port)
             c.Cluster.ports)
          port_period)

let channel_rates ccd =
  List.map
    (fun (ch : Model.channel) ->
      (ch, endpoint_period ccd ch.ch_src, endpoint_period ccd ch.ch_dst))
    ccd.channels
