(** Technical Architecture (paper Sec. 3.3): the target platform
    components used to implement the system — ECUs, operating system
    tasks, buses and message frames. *)

type ecu = {
  ecu_name : string;
  speed_factor : float;
      (** execution-time multiplier: WCET_us = ceil(cost * speed_factor) *)
}

type task = {
  task_name : string;
  task_ecu : string;
  period_us : int;
  priority : int;   (** unique per ECU; smaller = higher *)
  offset_us : int;
}

type bus = {
  bus_name : string;
  bitrate : int;   (** bits per second *)
}

type frame_slot = {
  slot_name : string;
  slot_bus : string;
  can_id : int;
  capacity_bits : int;  (** payload capacity, <= 64 for classic CAN *)
  slot_period_us : int;
}

type t = {
  ta_name : string;
  ecus : ecu list;
  tasks : task list;
  buses : bus list;
  frames : frame_slot list;
}

val make :
  ?buses:bus list -> ?frames:frame_slot list -> name:string ->
  ecus:ecu list -> tasks:task list -> unit -> t

val check : t -> string list
(** Unique names; tasks reference declared ECUs; unique priorities per
    ECU; frames reference declared buses; unique CAN ids per bus; frame
    capacities within 64 bits; positive periods and bitrates. *)

val find_task : t -> string -> task option
val find_ecu : t -> string -> ecu option
val tasks_of_ecu : t -> string -> task list
val frames_of_bus : t -> string -> frame_slot list

val pp : Format.formatter -> t -> unit
