lib/la/well_defined.mli: Automode_core Ccd Format Model
