lib/la/impl_type.mli: Automode_core Dtype Format Value
