lib/la/cluster.ml: Automode_core Clock Dfd Dtype Expr Format Impl_type List Model Network Printf Stdlib String
