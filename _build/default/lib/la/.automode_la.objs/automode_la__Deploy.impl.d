lib/la/deploy.ml: Automode_core Automode_osek Ccd Cluster Dtype Float Format Hashtbl Impl_type Int List Model Option Stdlib String Ta
