lib/la/cluster.mli: Automode_core Impl_type Model
