lib/la/well_defined.ml: Automode_core Ccd Cluster Dtype Format List Model Option Printf String
