lib/la/impl_type.ml: Automode_core Dtype Float Format List Option Stdlib String Value
