lib/la/ta.ml: Format Int List String
