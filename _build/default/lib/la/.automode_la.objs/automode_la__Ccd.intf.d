lib/la/ccd.mli: Automode_core Cluster Model
