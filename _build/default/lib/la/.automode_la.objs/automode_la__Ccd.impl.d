lib/la/ccd.ml: Automode_core Causality Clock Cluster Format List Model Network Option String
