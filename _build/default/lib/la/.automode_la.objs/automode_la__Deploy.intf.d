lib/la/deploy.mli: Automode_core Automode_osek Ccd Format Model Ta
