lib/la/ta.mli: Format
