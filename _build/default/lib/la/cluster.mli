(** Clusters — the "smallest deployable units" of the Logical
    Architecture (paper Sec. 3.3).

    A cluster groups and instantiates FDA-level components.  Its
    interface is statically typed and its signal frequencies are
    explicit (every port carries a declared clock).  Several clusters
    may be mapped to one operating system task, but a cluster is never
    split across tasks. *)

open Automode_core

type t = {
  cluster_name : string;
  ports : Model.port list;
  body : Model.network;  (** hierarchical DFDs are fine inside a cluster *)
  impl_types : (string * Impl_type.t) list;
      (** implementation type per port (LA type-system extension) *)
}

val make :
  ?impl_types:(string * Impl_type.t) list -> name:string ->
  ports:Model.port list -> body:Model.network -> unit -> t

val to_component : t -> Model.component
(** View the cluster as a DFD-behavior component (for simulation). *)

val of_component :
  ?impl_types:(string * Impl_type.t) list -> Model.component ->
  (t, string) result
(** Clusters require a network behavior (DFD or SSD body) and fully
    typed ports. *)

val check : t -> string list
(** LA well-formedness: statically typed ports, periodic port clocks
    (explicit frequencies), implementation types refine the declared
    abstract types, body passes the DFD checks, and the body is not a
    CCD (no recursive cluster definitions — guaranteed by construction,
    checked for nested clusters encoded as components). *)

val period : t -> int option
(** The cluster's activation period: the greatest common divisor of its
    ports' clock periods ([None] if any port clock is aperiodic). *)

val wcet_estimate : t -> int
(** Abstract execution cost in "operation units": the number of
    expression nodes, transitions, and channels in the body.  Deployment
    scales it by the ECU speed factor to obtain task WCETs. *)
