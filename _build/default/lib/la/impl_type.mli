(** Implementation types of the LA level (paper Sec. 3.3).

    "The type system at the LA level is extended by implementation types
    which capture the platform-related constraints associated with
    implementation.  Abstract data types such as [int] are typically
    mapped to implementation, e.g. [int16] or [int32].  Similarly, a
    floating-point message on the FDA level may be mapped to a
    fixed-point or integer message on the LA level."

    Fixed-point encoding convention: [physical = scale * raw + offset],
    with [raw] stored in the integer container. *)

open Automode_core

type word = Int8 | Int16 | Int32 | UInt8 | UInt16 | UInt32

type t =
  | Ibool                                       (** one byte *)
  | Iint of word
  | Ifloat32
  | Ifloat64
  | Ifixed of { container : word; scale : float; offset : float }
  | Ienum of Dtype.enum_decl * word

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

val bit_width : t -> int
val word_range : word -> int * int
(** Inclusive [min, max] raw range of an integer container. *)

val refines : t -> Dtype.t -> bool
(** May the implementation type carry messages of the abstract type?
    [Iint _] refines [Tint]; [Ifloat*] and [Ifixed _] refine [Tfloat]
    (and [Tint]); [Ienum (e, _)] refines [Tenum e] when the container
    can hold all literals; [Ibool] refines [Tbool]. *)

val physical_range : t -> (float * float) option
(** Representable physical interval of numeric implementation types. *)

val quantization_step : t -> float option
(** The physical weight of one LSB ([Some scale] for fixed-point, [Some
    1.] for plain integers, [None] for floats/bool/enum). *)

exception Encode_error of string

val encode : t -> Value.t -> Value.t
(** Encode an abstract value into its implementation representation:
    fixed-point and integer values become the raw container integer
    (round-to-nearest, {e saturating} at the container bounds); floats
    stay floats; enums become their literal index.
    @raise Encode_error on unrepresentable values (wrong kind). *)

val decode : t -> Value.t -> Value.t
(** Left inverse of {!encode} up to quantization: raw back to physical. *)

val quantization_error_bound : t -> float option
(** Worst-case |physical - decode (encode physical)| inside the
    representable range: half a quantization step. *)

val fixed_for_range :
  ?container:word -> lo:float -> hi:float -> unit -> t
(** The fixed-point type covering [lo, hi] with the smallest scale
    (finest resolution) in the given container (default [Int16]). *)

val smallest_container : lo:float -> hi:float -> resolution:float -> t option
(** The cheapest fixed-point type (by container width) covering
    [lo, hi] with a step of at most [resolution]; [None] if even 32 bits
    do not suffice. *)
