(** Generated communication components (paper Sec. 3.4).

    "In all generated ASCET-SD projects, additional communication
    components have to be added which can be configured according to the
    generated or supplemented communication matrix."

    For every node, the generator emits a send component per outgoing
    signal (pack into the mapped frame, queue on the bus) and a receive
    component per incoming signal (unpack, publish with the ERCOS
    data-integrity protocol of {!Automode_osek.Ipc}). *)

val for_node :
  node:string -> frame_of:(string -> string option) ->
  Automode_osek.Comm_matrix.t -> string
(** The communication-component section of a node's project text.
    [frame_of signal] is the deployment's signal-to-frame mapping
    (unmapped signals are emitted with a TODO marker). *)

val summary : Automode_osek.Comm_matrix.t -> string
(** One line per signal: sender -> receivers via frame sizes/periods. *)
