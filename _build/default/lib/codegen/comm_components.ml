module CM = Automode_osek.Comm_matrix

let for_node ~node ~frame_of (cm : CM.t) =
  let buf = Buffer.create 1024 in
  let outgoing =
    List.filter (fun (e : CM.entry) -> String.equal e.sender node) cm.entries
  in
  let incoming =
    List.filter (fun (e : CM.entry) -> List.mem node e.receivers) cm.entries
  in
  if outgoing <> [] || incoming <> [] then
    Buffer.add_string buf "/* communication components (from comm matrix) */\n";
  List.iter
    (fun (e : CM.entry) ->
      let frame =
        match frame_of e.signal with
        | Some f -> f
        | None -> "/* TODO: unmapped */"
      in
      Buffer.add_string buf
        (Printf.sprintf
           "comm send %s { frame = %s; size_bits = %d; period_us = %d; }\n"
           e.signal frame e.size_bits e.period_us))
    outgoing;
  List.iter
    (fun (e : CM.entry) ->
      let frame =
        match frame_of e.signal with
        | Some f -> f
        | None -> "/* TODO: unmapped */"
      in
      Buffer.add_string buf
        (Printf.sprintf
           "comm recv %s { frame = %s; publish = data_integrity; /* Ipc copy-out */ }\n"
           e.signal frame))
    incoming;
  Buffer.contents buf

let summary (cm : CM.t) =
  let buf = Buffer.create 512 in
  List.iter
    (fun (e : CM.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "%-16s %-12s -> %-30s %2d bits every %d us\n" e.signal
           e.sender
           (String.concat ", " e.receivers)
           e.size_bits e.period_us))
    cm.entries;
  Buffer.contents buf
