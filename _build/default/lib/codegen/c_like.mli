(** C-like code generation from AutoMoDe behaviors (paper Sec. 3.4).

    The Operational Architecture is reached by generating code that runs
    inside OSEK tasks.  Clock semantics maps onto the OA as follows: a
    component's activation clock is realized by the period of the task
    its cluster is deployed to, so [when]-sampling disappears from the
    generated body (the task simply runs at that rate), absence is
    realized by not executing, and [pre]/[current] registers become
    [static] state variables.

    The generator is deliberately textual (the produced projects are
    inspected by tests and humans, not compiled here). *)

open Automode_core

exception Codegen_error of string

val c_type : Dtype.t option -> string
(** ["float64"], ["int32"], ["bool8"], enum type name, or ["float64"]
    for dynamically typed ports. *)

val expr_to_c :
  state_prefix:string -> Expr.t -> string * string list * string list
(** [expr_to_c ~state_prefix e] is [(c_expression, static_decls,
    post_statements)]: the C expression computing [e]'s value this
    activation, the [static] declarations for its [pre]/[current]
    registers (names are prefixed), and the statements updating those
    registers after the expression has been evaluated.
    @raise Codegen_error on [Is_present] (presence is a scheduling
    concept with no OA representation). *)

val component_to_c : Model.component -> string
(** A C translation unit for one atomic component: a step function per
    output for [B_exprs], a state enum + switch for [B_std], a mode
    enum + transition/dispatch switch for [B_mtd].  Composite components
    (DFD/SSD) emit one function calling the sub-steps in causal order.
    @raise Codegen_error on unspecified behaviors. *)

val network_step_order : Model.network -> string list
(** The causal call order used for composite components (re-exported
    from {!Causality} for the project generator). *)
