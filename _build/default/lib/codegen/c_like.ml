open Automode_core

exception Codegen_error of string

let codegen_error fmt = Format.kasprintf (fun s -> raise (Codegen_error s)) fmt

let c_type = function
  | Some Dtype.Tbool -> "bool8"
  | Some Dtype.Tint -> "int32"
  | Some Dtype.Tfloat -> "float64"
  | Some (Dtype.Tenum e) -> e.enum_name
  | Some (Dtype.Ttuple _) -> "struct_t"
  | None -> "float64"

let c_value (v : Value.t) =
  match v with
  | Value.Bool b -> if b then "1" else "0"
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.Enum (ty, lit) -> Printf.sprintf "%s_%s" ty lit
  | Value.Tuple _ -> codegen_error "tuple literals not supported in C output"

let binop_c = function
  | Expr.Add -> "+" | Expr.Sub -> "-" | Expr.Mul -> "*" | Expr.Div -> "/"
  | Expr.Mod -> "%"
  | Expr.And -> "&&" | Expr.Or -> "||"
  | Expr.Eq -> "==" | Expr.Ne -> "!=" | Expr.Lt -> "<" | Expr.Le -> "<="
  | Expr.Gt -> ">" | Expr.Ge -> ">="
  | Expr.Min -> "" | Expr.Max -> ""

let expr_to_c ~state_prefix expr =
  let counter = ref 0 in
  let decls = ref [] and posts = ref [] in
  let fresh_state init =
    incr counter;
    let name = Printf.sprintf "%s_reg%d" state_prefix !counter in
    decls :=
      Printf.sprintf "static float64 %s = %s;" name (c_value init) :: !decls;
    name
  in
  let rec go (e : Expr.t) =
    match e with
    | Expr.Const v -> c_value v
    | Expr.Var name -> name
    | Expr.Unop (Expr.Neg, a) -> Printf.sprintf "(-%s)" (go a)
    | Expr.Unop (Expr.Not, a) -> Printf.sprintf "(!%s)" (go a)
    | Expr.Unop (Expr.Abs, a) -> Printf.sprintf "fabs(%s)" (go a)
    | Expr.Binop (Expr.Min, a, b) ->
      Printf.sprintf "fmin(%s, %s)" (go a) (go b)
    | Expr.Binop (Expr.Max, a, b) ->
      Printf.sprintf "fmax(%s, %s)" (go a) (go b)
    | Expr.Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (go a) (binop_c op) (go b)
    | Expr.If (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (go c) (go a) (go b)
    | Expr.Pre (init, a) ->
      (* read the register now, refresh it after the step *)
      let reg = fresh_state init in
      let value = go a in
      posts := Printf.sprintf "%s = %s;" reg value :: !posts;
      reg
    | Expr.Current (init, a) ->
      (* the held value lives in a register refreshed after each step; at
         the OA the producer's task rate makes the value fresh at every
         activation, so the expression reads the freshly computed value *)
      let reg = fresh_state init in
      let value = go a in
      posts := Printf.sprintf "%s = %s;" reg value :: !posts;
      value
    | Expr.When (a, _) ->
      (* the clock is realized by the owning task's period *)
      go a
    | Expr.Call (name, args) ->
      let cargs = List.map go args in
      (match name, cargs with
       | "limit", [ x; lo; hi ] ->
         Printf.sprintf "fmin(fmax(%s, %s), %s)" x lo hi
       | "select", [ c; a; b ] -> Printf.sprintf "(%s ? %s : %s)" c a b
       | "add", [ a; b ] -> Printf.sprintf "(%s + %s)" a b
       | "sub", [ a; b ] -> Printf.sprintf "(%s - %s)" a b
       | "mul", [ a; b ] -> Printf.sprintf "(%s * %s)" a b
       | "div", [ a; b ] -> Printf.sprintf "(%s / %s)" a b
       | _ -> Printf.sprintf "%s(%s)" name (String.concat ", " cargs))
    | Expr.Is_present _ ->
      codegen_error
        "present() has no OA representation (activation realizes presence)"
  in
  let text = go expr in
  (text, List.rev !decls, List.rev !posts)

let fn_header buf name (ports : Model.port list) ret =
  let ins =
    List.filter_map
      (fun (p : Model.port) ->
        if p.port_dir = Model.In then
          Some (Printf.sprintf "%s %s" (c_type p.port_type) p.port_name)
        else None)
      ports
  in
  Buffer.add_string buf
    (Printf.sprintf "%s %s(%s)\n" ret name
       (if ins = [] then "void" else String.concat ", " ins))

let exprs_to_c buf comp_name (ports : Model.port list) outs =
  List.iter
    (fun (port, expr) ->
      let fn = Printf.sprintf "%s_%s_step" comp_name port in
      let text, decls, posts =
        expr_to_c ~state_prefix:(comp_name ^ "_" ^ port) expr
      in
      let ret =
        c_type
          (Option.bind
             (List.find_opt
                (fun (p : Model.port) -> String.equal p.port_name port)
                ports)
             (fun p -> p.port_type))
      in
      List.iter (fun d -> Buffer.add_string buf (d ^ "\n")) decls;
      fn_header buf fn ports ret;
      Buffer.add_string buf "{\n";
      Buffer.add_string buf (Printf.sprintf "  %s result = %s;\n" ret text);
      List.iter (fun p -> Buffer.add_string buf ("  " ^ p ^ "\n")) posts;
      Buffer.add_string buf "  return result;\n}\n\n")
    outs

let guard_to_c comp_name guard =
  (* guards are memoryless, so no registers appear *)
  let text, _, _ = expr_to_c ~state_prefix:(comp_name ^ "_guard") guard in
  text

let std_to_c buf comp_name (ports : Model.port list) (std : Model.std) =
  Buffer.add_string buf
    (Printf.sprintf "typedef enum { %s } %s_state_t;\n"
       (String.concat ", "
          (List.map (fun s -> comp_name ^ "_S_" ^ s) std.std_states))
       comp_name);
  Buffer.add_string buf
    (Printf.sprintf "static %s_state_t %s_state = %s_S_%s;\n" comp_name
       comp_name comp_name std.std_initial);
  List.iter
    (fun (v, init) ->
      Buffer.add_string buf
        (Printf.sprintf "static float64 %s_var_%s = %s;\n" comp_name v
           (c_value init)))
    std.std_vars;
  fn_header buf (comp_name ^ "_step") ports "void";
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  switch (%s_state) {\n" comp_name);
  List.iter
    (fun state ->
      Buffer.add_string buf
        (Printf.sprintf "  case %s_S_%s:\n" comp_name state);
      let ts =
        List.sort
          (fun (a : Model.std_transition) b ->
            Int.compare a.st_priority b.st_priority)
          (List.filter
             (fun (t : Model.std_transition) -> String.equal t.st_src state)
             std.std_transitions)
      in
      List.iteri
        (fun i (t : Model.std_transition) ->
          let kw = if i = 0 then "if" else "else if" in
          Buffer.add_string buf
            (Printf.sprintf "    %s (%s) {\n" kw
               (guard_to_c comp_name t.st_guard));
          List.iter
            (fun (port, e) ->
              let text, _, _ =
                expr_to_c ~state_prefix:(comp_name ^ "_out") e
              in
              Buffer.add_string buf
                (Printf.sprintf "      emit_%s(%s);\n" port text))
            t.st_outputs;
          List.iter
            (fun (v, e) ->
              let text, _, _ =
                expr_to_c ~state_prefix:(comp_name ^ "_upd") e
              in
              Buffer.add_string buf
                (Printf.sprintf "      %s_var_%s = %s;\n" comp_name v text))
            t.st_updates;
          Buffer.add_string buf
            (Printf.sprintf "      %s_state = %s_S_%s;\n" comp_name comp_name
               t.st_dst);
          Buffer.add_string buf "    }\n")
        ts;
      Buffer.add_string buf "    break;\n")
    std.std_states;
  Buffer.add_string buf "  }\n}\n\n"

let rec mtd_to_c buf comp_name (ports : Model.port list) (mtd : Model.mtd) =
  Buffer.add_string buf
    (Printf.sprintf "typedef enum { %s } %s_mode_t;\n"
       (String.concat ", "
          (List.map
             (fun (m : Model.mode) -> comp_name ^ "_M_" ^ m.mode_name)
             mtd.mtd_modes))
       comp_name);
  Buffer.add_string buf
    (Printf.sprintf "static %s_mode_t %s_mode = %s_M_%s;\n" comp_name
       comp_name comp_name mtd.mtd_initial);
  (* mode bodies *)
  List.iter
    (fun (m : Model.mode) ->
      behavior_to_c buf
        (comp_name ^ "_" ^ m.mode_name)
        ports m.mode_behavior)
    mtd.mtd_modes;
  fn_header buf (comp_name ^ "_step") ports "void";
  Buffer.add_string buf "{\n  /* mode transitions (strong preemption) */\n";
  Buffer.add_string buf (Printf.sprintf "  switch (%s_mode) {\n" comp_name);
  List.iter
    (fun (m : Model.mode) ->
      Buffer.add_string buf
        (Printf.sprintf "  case %s_M_%s:\n" comp_name m.mode_name);
      let ts =
        List.sort
          (fun (a : Model.mtd_transition) b ->
            Int.compare a.mt_priority b.mt_priority)
          (List.filter
             (fun (t : Model.mtd_transition) ->
               String.equal t.mt_src m.mode_name)
             mtd.mtd_transitions)
      in
      List.iteri
        (fun i (t : Model.mtd_transition) ->
          let kw = if i = 0 then "if" else "else if" in
          Buffer.add_string buf
            (Printf.sprintf "    %s (%s) %s_mode = %s_M_%s;\n" kw
               (guard_to_c comp_name t.mt_guard)
               comp_name comp_name t.mt_dst))
        ts;
      Buffer.add_string buf "    break;\n")
    mtd.mtd_modes;
  Buffer.add_string buf "  }\n  /* mode behavior dispatch */\n";
  Buffer.add_string buf (Printf.sprintf "  switch (%s_mode) {\n" comp_name);
  List.iter
    (fun (m : Model.mode) ->
      Buffer.add_string buf
        (Printf.sprintf "  case %s_M_%s: %s_%s_dispatch(); break;\n" comp_name
           m.mode_name comp_name m.mode_name))
    mtd.mtd_modes;
  Buffer.add_string buf "  }\n}\n\n"

and behavior_to_c buf comp_name ports (behavior : Model.behavior) =
  match behavior with
  | Model.B_exprs outs ->
    exprs_to_c buf comp_name ports outs;
    (* dispatch helper for MTD modes *)
    Buffer.add_string buf
      (Printf.sprintf "void %s_dispatch(void)\n{\n" comp_name);
    List.iter
      (fun (port, _) ->
        Buffer.add_string buf
          (Printf.sprintf "  /* emit %s via %s_%s_step */\n" port comp_name
             port))
      outs;
    Buffer.add_string buf "}\n\n"
  | Model.B_std std -> std_to_c buf comp_name ports std
  | Model.B_mtd mtd -> mtd_to_c buf comp_name ports mtd
  | Model.B_dfd net | Model.B_ssd net ->
    let order =
      match Causality.evaluation_order net with
      | Ok order -> order
      | Error _ -> List.map (fun (c : Model.component) -> c.comp_name) net.net_components
    in
    List.iter
      (fun sub_name ->
        match Model.find_component net sub_name with
        | Some sub -> behavior_to_c buf (comp_name ^ "_" ^ sub_name) sub.comp_ports sub.comp_behavior
        | None -> ())
      order;
    fn_header buf (comp_name ^ "_step") ports "void";
    Buffer.add_string buf "{\n";
    List.iter
      (fun sub_name ->
        Buffer.add_string buf
          (Printf.sprintf "  %s_%s_step_all();\n" comp_name sub_name))
      order;
    Buffer.add_string buf "}\n\n"
  | Model.B_unspecified ->
    codegen_error "cannot generate code for unspecified behavior %s" comp_name

let component_to_c (comp : Model.component) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "/* generated from AutoMoDe component %s */\n\n"
       comp.comp_name);
  behavior_to_c buf comp.comp_name comp.comp_ports comp.comp_behavior;
  Buffer.contents buf

let network_step_order (net : Model.network) =
  match Causality.evaluation_order net with
  | Ok order -> order
  | Error _ ->
    List.map (fun (c : Model.component) -> c.comp_name) net.net_components
