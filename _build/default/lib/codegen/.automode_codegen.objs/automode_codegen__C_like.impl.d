lib/codegen/c_like.ml: Automode_core Buffer Causality Dtype Expr Format Int List Model Option Printf String Value
