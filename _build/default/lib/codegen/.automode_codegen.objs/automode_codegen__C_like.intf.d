lib/codegen/c_like.mli: Automode_core Dtype Expr Model
