lib/codegen/ascet_project.ml: Automode_core Automode_la Buffer C_like Ccd Cluster Comm_components Deploy Filename List Model Printf String Sys Ta
