lib/codegen/comm_components.mli: Automode_osek
