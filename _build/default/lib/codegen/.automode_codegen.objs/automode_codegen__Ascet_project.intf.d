lib/codegen/ascet_project.mli: Automode_la Deploy
