lib/codegen/comm_components.ml: Automode_osek Buffer List Printf String
