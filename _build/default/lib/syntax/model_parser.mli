(** Parser for the textual AutoMoDe model format (inverse of
    {!Model_printer}).

    Grammar sketch:
    {v
    model     ::= "model" IDENT "level" ("FAA"|"FDA"|"LA"|"TA"|"OA")
                  enum* component
    enum      ::= "enum" IDENT "{" IDENT ("," IDENT)* "}"
    component ::= "component" IDENT "{" port* behavior "}"
    port      ::= ("in"|"out") IDENT (":" type)? ("@" clock)?
                  ("resource" STRING)? ";"
    behavior  ::= "unspecified" ";"
                | "exprs" "{" (IDENT "=" expr ";")* "}"
                | ("dfd"|"ssd") IDENT "{" component* channel* "}"
                | "mtd" IDENT "{" "initial" IDENT ";" mode* mtransition* "}"
                | "std" IDENT "{" "states" IDENT+ ";" "initial" IDENT ";"
                  ("var" IDENT "=" literal ";")* stransition* "}"
    channel   ::= "channel" IDENT ":" endpoint "->" endpoint
                  ("delayed")? ("init" literal)? ";"
    endpoint  ::= IDENT "." IDENT | "." IDENT
    clock     ::= "true" | "every" "(" INT "," clock ")"
                | "shift" "(" INT "," clock ")" | "event" "(" IDENT ")"
    expr      ::= infix expression with or < and < not < cmp < +- < */mod
                  < unary -; primaries: literals, qualified enum literals
                  [E.A], variables, present(x), pre/current(lit, e),
                  when(e, clock), if/then/else, calls
    v}

    Keywords are contextual — any identifier remains usable as a port or
    component name except inside the position where a keyword is
    expected. *)

open Automode_core

exception Parse_error of string * int

val parse : string -> Model.model
(** @raise Parse_error / @raise Syntax_lexer.Lex_error on bad input. *)

val parse_component : ?enums:Dtype.enum_decl list -> string -> Model.component
(** Parse a bare component (no [model] header); [enums] supplies the
    enum declarations its types may reference. *)

val parse_file : string -> Model.model
(** @raise Sys_error on IO failure. *)
