(** Printer for the textual AutoMoDe model format.

    The format is the persistent representation of the meta-model: a
    [model] header, the enum declarations, and the root component with
    its hierarchy of notations.  {!Model_parser.parse} is the exact
    inverse: [parse (to_string m)] is structurally equal to [m]
    (round-trip property in the test-suite).

    Limitations: tuple-typed ports and tuple literals are not
    serializable (no automotive case-study model uses them). *)

open Automode_core

exception Unprintable of string

val pp_expr : Format.formatter -> Expr.t -> unit
(** Expression surface syntax: ASCET-style infix operators plus
    [pre(init, e)], [current(init, e)], [when(e, clock)], [present(x)]
    and [if c then a else b].  Enum literals print qualified
    ([Type.Literal]) so parsing needs no literal-uniqueness assumption. *)

val pp_component : Format.formatter -> Model.component -> unit
val pp_model : Format.formatter -> Model.model -> unit

val component_to_string : Model.component -> string
val to_string : Model.model -> string
(** @raise Unprintable on tuple types/values. *)
