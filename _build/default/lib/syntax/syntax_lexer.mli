(** Lexer for the textual AutoMoDe model format (see {!Model_parser} for
    the grammar).  Comments run from ["//"] to end of line. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string   (** double-quoted, for resource tags *)
  | LBRACE | RBRACE | LPAREN | RPAREN
  | COLON | SEMI | COMMA | DOT | AT
  | ARROW              (** [->] *)
  | EQ                 (** [=] *)
  | NEQ                (** [/=] *)
  | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH
  | EOF

type located = { tok : token; line : int }

exception Lex_error of string * int

val tokenize : string -> located list
(** @raise Lex_error on stray characters or unterminated strings. *)

val token_to_string : token -> string
