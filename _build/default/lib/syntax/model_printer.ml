open Automode_core

exception Unprintable of string

let unprintable fmt = Format.kasprintf (fun s -> raise (Unprintable s)) fmt

(* Floats must re-lex as floats: force a decimal point or exponent. *)
let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let pp_value ppf (v : Value.t) =
  match v with
  | Value.Bool b -> Format.pp_print_bool ppf b
  | Value.Int i -> Format.pp_print_int ppf i
  | Value.Float f -> Format.pp_print_string ppf (float_lit f)
  | Value.Enum (ty, lit) -> Format.fprintf ppf "%s.%s" ty lit
  | Value.Tuple _ -> unprintable "tuple literal %a" Value.pp v

let pp_type ppf (ty : Dtype.t) =
  match ty with
  | Dtype.Tbool -> Format.pp_print_string ppf "bool"
  | Dtype.Tint -> Format.pp_print_string ppf "int"
  | Dtype.Tfloat -> Format.pp_print_string ppf "float"
  | Dtype.Tenum e -> Format.pp_print_string ppf e.enum_name
  | Dtype.Ttuple _ -> unprintable "tuple type %s" (Dtype.to_string ty)

let binop_surface = function
  | Expr.Add -> "+" | Expr.Sub -> "-" | Expr.Mul -> "*" | Expr.Div -> "/"
  | Expr.Mod -> "mod"
  | Expr.And -> "and" | Expr.Or -> "or"
  | Expr.Eq -> "=" | Expr.Ne -> "/=" | Expr.Lt -> "<" | Expr.Le -> "<="
  | Expr.Gt -> ">" | Expr.Ge -> ">="
  | Expr.Min -> "min" | Expr.Max -> "max"

let rec pp_expr ppf (e : Expr.t) =
  match e with
  | Expr.Const v -> pp_value ppf v
  | Expr.Var name -> Format.pp_print_string ppf name
  | Expr.Unop (Expr.Not, a) -> Format.fprintf ppf "(not %a)" pp_expr a
  | Expr.Unop (Expr.Neg, a) -> Format.fprintf ppf "(-%a)" pp_expr a
  | Expr.Unop (Expr.Abs, a) -> Format.fprintf ppf "abs(%a)" pp_expr a
  | Expr.Binop ((Expr.Min | Expr.Max) as op, a, b) ->
    Format.fprintf ppf "%s(%a, %a)" (binop_surface op) pp_expr a pp_expr b
  | Expr.Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_surface op) pp_expr b
  | Expr.If (c, a, b) ->
    Format.fprintf ppf "(if %a then %a else %a)" pp_expr c pp_expr a pp_expr b
  | Expr.Pre (init, a) ->
    Format.fprintf ppf "pre(%a, %a)" pp_value init pp_expr a
  | Expr.Current (init, a) ->
    Format.fprintf ppf "current(%a, %a)" pp_value init pp_expr a
  | Expr.When (a, c) -> Format.fprintf ppf "when(%a, %a)" pp_expr a Clock.pp c
  | Expr.Is_present name -> Format.fprintf ppf "present(%s)" name
  | Expr.Call (name, args) ->
    Format.fprintf ppf "%s(%a)" name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_expr)
      args

let indent n = String.make (2 * n) ' '

let pp_port ~level ppf (p : Model.port) =
  let dir = match p.port_dir with Model.In -> "in" | Model.Out -> "out" in
  Format.fprintf ppf "%s%s %s" (indent level) dir p.port_name;
  (match p.port_type with
   | Some ty -> Format.fprintf ppf " : %a" pp_type ty
   | None -> ());
  (match p.port_clock with
   | Clock.Base -> ()
   | c -> Format.fprintf ppf " @@%a" Clock.pp c);
  (match p.port_resource with
   | Some r -> Format.fprintf ppf " resource \"%s\"" r
   | None -> ());
  Format.fprintf ppf ";@\n"

let pp_endpoint ppf (ep : Model.endpoint) =
  match ep.ep_comp with
  | None -> Format.fprintf ppf ".%s" ep.ep_port
  | Some c -> Format.fprintf ppf "%s.%s" c ep.ep_port

let pp_channel ~level ppf (ch : Model.channel) =
  Format.fprintf ppf "%schannel %s : %a -> %a" (indent level) ch.ch_name
    pp_endpoint ch.ch_src pp_endpoint ch.ch_dst;
  if ch.ch_delayed then Format.fprintf ppf " delayed";
  (match ch.ch_init with
   | Some v -> Format.fprintf ppf " init %a" pp_value v
   | None -> ());
  Format.fprintf ppf ";@\n"

let rec pp_behavior ~level ppf (b : Model.behavior) =
  match b with
  | Model.B_unspecified -> Format.fprintf ppf "%sunspecified;@\n" (indent level)
  | Model.B_exprs outs ->
    Format.fprintf ppf "%sexprs {@\n" (indent level);
    List.iter
      (fun (port, e) ->
        Format.fprintf ppf "%s%s = %a;@\n" (indent (level + 1)) port pp_expr e)
      outs;
    Format.fprintf ppf "%s}@\n" (indent level)
  | Model.B_dfd net -> pp_network ~level ~kw:"dfd" ppf net
  | Model.B_ssd net -> pp_network ~level ~kw:"ssd" ppf net
  | Model.B_mtd mtd ->
    Format.fprintf ppf "%smtd %s {@\n" (indent level) mtd.mtd_name;
    Format.fprintf ppf "%sinitial %s;@\n" (indent (level + 1)) mtd.mtd_initial;
    List.iter
      (fun (m : Model.mode) ->
        Format.fprintf ppf "%smode %s {@\n" (indent (level + 1)) m.mode_name;
        pp_behavior ~level:(level + 2) ppf m.mode_behavior;
        Format.fprintf ppf "%s}@\n" (indent (level + 1)))
      mtd.mtd_modes;
    List.iter
      (fun (t : Model.mtd_transition) ->
        Format.fprintf ppf "%stransition %s -> %s when %a priority %d;@\n"
          (indent (level + 1))
          t.mt_src t.mt_dst pp_expr t.mt_guard t.mt_priority)
      mtd.mtd_transitions;
    Format.fprintf ppf "%s}@\n" (indent level)
  | Model.B_std std ->
    Format.fprintf ppf "%sstd %s {@\n" (indent level) std.std_name;
    Format.fprintf ppf "%sstates %s;@\n" (indent (level + 1))
      (String.concat " " std.std_states);
    Format.fprintf ppf "%sinitial %s;@\n" (indent (level + 1)) std.std_initial;
    List.iter
      (fun (v, init) ->
        Format.fprintf ppf "%svar %s = %a;@\n" (indent (level + 1)) v pp_value
          init)
      std.std_vars;
    List.iter
      (fun (t : Model.std_transition) ->
        Format.fprintf ppf "%stransition %s -> %s when %a priority %d {@\n"
          (indent (level + 1))
          t.st_src t.st_dst pp_expr t.st_guard t.st_priority;
        List.iter
          (fun (port, e) ->
            Format.fprintf ppf "%semit %s = %a;@\n" (indent (level + 2)) port
              pp_expr e)
          t.st_outputs;
        List.iter
          (fun (v, e) ->
            Format.fprintf ppf "%sset %s = %a;@\n" (indent (level + 2)) v
              pp_expr e)
          t.st_updates;
        Format.fprintf ppf "%s}@\n" (indent (level + 1)))
      std.std_transitions;
    Format.fprintf ppf "%s}@\n" (indent level)

and pp_network ~level ~kw ppf (net : Model.network) =
  Format.fprintf ppf "%s%s %s {@\n" (indent level) kw net.net_name;
  List.iter (pp_component_at ~level:(level + 1) ppf) net.net_components;
  List.iter (pp_channel ~level:(level + 1) ppf) net.net_channels;
  Format.fprintf ppf "%s}@\n" (indent level)

and pp_component_at ~level ppf (c : Model.component) =
  Format.fprintf ppf "%scomponent %s {@\n" (indent level) c.comp_name;
  List.iter (pp_port ~level:(level + 1) ppf) c.comp_ports;
  pp_behavior ~level:(level + 1) ppf c.comp_behavior;
  Format.fprintf ppf "%s}@\n" (indent level)

let pp_component ppf c = pp_component_at ~level:0 ppf c

(* All enum declarations a model needs: the declared ones plus every enum
   occurring in port types, literals or initial values of the hierarchy. *)
let collect_enums (m : Model.model) =
  let table = Hashtbl.create 8 in
  let add (e : Dtype.enum_decl) =
    if not (Hashtbl.mem table e.enum_name) then
      Hashtbl.replace table e.enum_name e
  in
  List.iter add m.model_enums;
  let add_type = function
    | Some (Dtype.Tenum e) -> add e
    | Some (Dtype.Tbool | Dtype.Tint | Dtype.Tfloat | Dtype.Ttuple _) | None ->
      ()
  in
  Model.iter_components
    (fun _ (c : Model.component) ->
      List.iter (fun (p : Model.port) -> add_type p.Model.port_type) c.comp_ports)
    m.model_root;
  (* deterministic order: by name *)
  Hashtbl.fold (fun _ e acc -> e :: acc) table []
  |> List.sort (fun (a : Dtype.enum_decl) b ->
         String.compare a.enum_name b.enum_name)

let pp_model ppf (m : Model.model) =
  Format.fprintf ppf "model %s level %s@\n@\n" m.model_name
    (Model.level_name m.model_level);
  List.iter
    (fun (e : Dtype.enum_decl) ->
      Format.fprintf ppf "enum %s { %s }@\n" e.enum_name
        (String.concat ", " e.literals))
    (collect_enums m);
  Format.pp_print_newline ppf ();
  pp_component ppf m.model_root

let component_to_string c = Format.asprintf "%a" pp_component c
let to_string m = Format.asprintf "%a" pp_model m
