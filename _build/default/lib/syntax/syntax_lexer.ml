type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | LBRACE | RBRACE | LPAREN | RPAREN
  | COLON | SEMI | COMMA | DOT | AT
  | ARROW
  | EQ
  | NEQ
  | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH
  | EOF

type located = { tok : token; line : int }

exception Lex_error of string * int

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let rec go i acc =
    if i >= n then List.rev ({ tok = EOF; line = !line } :: acc)
    else
      let c = src.[i] in
      let emit tok len = go (i + len) ({ tok; line = !line } :: acc) in
      match c with
      | ' ' | '\t' | '\r' -> go (i + 1) acc
      | '\n' -> incr line; go (i + 1) acc
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip i) acc
      | '/' when i + 1 < n && src.[i + 1] = '=' -> emit NEQ 2
      | '/' -> emit SLASH 1
      | '-' when i + 1 < n && src.[i + 1] = '>' -> emit ARROW 2
      | '-' -> emit MINUS 1
      | '{' -> emit LBRACE 1
      | '}' -> emit RBRACE 1
      | '(' -> emit LPAREN 1
      | ')' -> emit RPAREN 1
      | ':' -> emit COLON 1
      | ';' -> emit SEMI 1
      | ',' -> emit COMMA 1
      | '@' -> emit AT 1
      | '=' -> emit EQ 1
      | '<' when i + 1 < n && src.[i + 1] = '=' -> emit LE 2
      | '<' -> emit LT 1
      | '>' when i + 1 < n && src.[i + 1] = '=' -> emit GE 2
      | '>' -> emit GT 1
      | '+' -> emit PLUS 1
      | '*' -> emit STAR 1
      | '"' ->
        let rec scan j =
          if j >= n then raise (Lex_error ("unterminated string", !line))
          else if src.[j] = '"' then j
          else scan (j + 1)
        in
        let j = scan (i + 1) in
        let text = String.sub src (i + 1) (j - i - 1) in
        go (j + 1) ({ tok = STRING text; line = !line } :: acc)
      | _ when is_digit c ->
        let rec scan j = if j < n && is_digit src.[j] then scan (j + 1) else j in
        let j = scan i in
        if j < n && src.[j] = '.' && j + 1 < n && is_digit src.[j + 1] then begin
          let k = scan (j + 1) in
          (* scientific notation: 1.5e-3 *)
          let k =
            if k < n && (src.[k] = 'e' || src.[k] = 'E') then begin
              let k' =
                if k + 1 < n && (src.[k + 1] = '-' || src.[k + 1] = '+') then
                  k + 2
                else k + 1
              in
              scan k'
            end
            else k
          in
          let text = String.sub src i (k - i) in
          go k ({ tok = FLOAT (float_of_string text); line = !line } :: acc)
        end
        else
          let text = String.sub src i (j - i) in
          go j ({ tok = INT (int_of_string text); line = !line } :: acc)
      | _ when is_ident_start c ->
        let rec scan j =
          if j < n && is_ident_char src.[j] then scan (j + 1) else j
        in
        let j = scan i in
        let text = String.sub src i (j - i) in
        go j ({ tok = IDENT text; line = !line } :: acc)
      | '.' -> emit DOT 1
      | _ -> raise (Lex_error (Printf.sprintf "stray character %C" c, !line))
  in
  go 0 []

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> "\"" ^ s ^ "\""
  | LBRACE -> "{" | RBRACE -> "}" | LPAREN -> "(" | RPAREN -> ")"
  | COLON -> ":" | SEMI -> ";" | COMMA -> "," | DOT -> "." | AT -> "@"
  | ARROW -> "->"
  | EQ -> "=" | NEQ -> "/="
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | EOF -> "<eof>"
