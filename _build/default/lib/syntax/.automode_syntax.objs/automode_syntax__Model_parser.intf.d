lib/syntax/model_parser.mli: Automode_core Dtype Model
