lib/syntax/syntax_lexer.ml: List Printf String
