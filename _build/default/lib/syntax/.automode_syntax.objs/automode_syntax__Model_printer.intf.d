lib/syntax/model_printer.mli: Automode_core Expr Format Model
