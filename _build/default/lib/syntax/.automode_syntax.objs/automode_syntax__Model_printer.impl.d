lib/syntax/model_printer.ml: Automode_core Clock Dtype Expr Float Format Hashtbl List Model Printf String Value
