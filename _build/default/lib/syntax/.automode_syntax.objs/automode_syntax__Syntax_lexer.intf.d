lib/syntax/syntax_lexer.mli:
