lib/syntax/model_parser.ml: Automode_core Clock Dtype Expr Format List Model String Syntax_lexer Value
