open Automode_core
module L = Syntax_lexer

exception Parse_error of string * int

type state = {
  mutable tokens : L.located list;
  mutable enums : Dtype.enum_decl list;
}

let error st fmt =
  let line = match st.tokens with { L.line; _ } :: _ -> line | [] -> 0 in
  Format.kasprintf (fun s -> raise (Parse_error (s, line))) fmt

let peek st = match st.tokens with { L.tok; _ } :: _ -> tok | [] -> L.EOF

let peek2 st =
  match st.tokens with _ :: { L.tok; _ } :: _ -> tok | _ -> L.EOF

let advance st =
  match st.tokens with _ :: rest -> st.tokens <- rest | [] -> ()

let expect st tok =
  if peek st = tok then advance st
  else
    error st "expected %s, found %s" (L.token_to_string tok)
      (L.token_to_string (peek st))

let ident st =
  match peek st with
  | L.IDENT name -> advance st; name
  | t -> error st "expected identifier, found %s" (L.token_to_string t)

let keyword st kw =
  match peek st with
  | L.IDENT k when String.equal k kw -> advance st
  | t -> error st "expected %s, found %s" kw (L.token_to_string t)

let at_keyword st kw =
  match peek st with
  | L.IDENT k -> String.equal k kw
  | _ -> false

let int_lit st =
  match peek st with
  | L.INT i -> advance st; i
  | t -> error st "expected integer, found %s" (L.token_to_string t)

let find_enum st name =
  List.find_opt
    (fun (e : Dtype.enum_decl) -> String.equal e.enum_name name)
    st.enums

let enum_value st ty_name lit =
  match find_enum st ty_name with
  | None -> error st "unknown enum type %s" ty_name
  | Some e ->
    if List.mem lit e.literals then Value.Enum (e.enum_name, lit)
    else error st "%s is not a literal of %s" lit ty_name

(* literal ::= true | false | INT | FLOAT | -NUM | E.A *)
let parse_literal st =
  match peek st with
  | L.IDENT "true" -> advance st; Value.Bool true
  | L.IDENT "false" -> advance st; Value.Bool false
  | L.INT i -> advance st; Value.Int i
  | L.FLOAT f -> advance st; Value.Float f
  | L.MINUS ->
    advance st;
    (match peek st with
     | L.INT i -> advance st; Value.Int (-i)
     | L.FLOAT f -> advance st; Value.Float (-.f)
     | t -> error st "expected number after -, found %s" (L.token_to_string t))
  | L.IDENT ty when peek2 st = L.DOT ->
    advance st; advance st;
    let lit = ident st in
    enum_value st ty lit
  | t -> error st "expected a literal, found %s" (L.token_to_string t)

let parse_type st =
  match peek st with
  | L.IDENT "bool" -> advance st; Dtype.Tbool
  | L.IDENT "int" -> advance st; Dtype.Tint
  | L.IDENT "float" -> advance st; Dtype.Tfloat
  | L.IDENT name ->
    advance st;
    (match find_enum st name with
     | Some e -> Dtype.Tenum e
     | None -> error st "unknown type %s" name)
  | t -> error st "expected a type, found %s" (L.token_to_string t)

(* clock ::= true | every(n, clock) | shift(k, clock) | event(name) *)
let rec parse_clock st =
  match peek st with
  | L.IDENT "true" -> advance st; Clock.Base
  | L.IDENT "every" ->
    advance st; expect st L.LPAREN;
    let n = int_lit st in
    expect st L.COMMA;
    let c = parse_clock st in
    expect st L.RPAREN;
    Clock.Every (n, c)
  | L.IDENT "shift" ->
    advance st; expect st L.LPAREN;
    let k = int_lit st in
    expect st L.COMMA;
    let c = parse_clock st in
    expect st L.RPAREN;
    Clock.Shift (k, c)
  | L.IDENT "event" ->
    advance st; expect st L.LPAREN;
    let name = ident st in
    expect st L.RPAREN;
    Clock.Event name
  | t -> error st "expected a clock, found %s" (L.token_to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if at_keyword st "or" then begin
    advance st;
    Expr.Binop (Expr.Or, lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if at_keyword st "and" then begin
    advance st;
    Expr.Binop (Expr.And, lhs, parse_and st)
  end
  else lhs

and parse_not st =
  if at_keyword st "not" then begin
    advance st;
    Expr.Unop (Expr.Not, parse_not st)
  end
  else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | L.EQ -> Some Expr.Eq
    | L.NEQ -> Some Expr.Ne
    | L.LT -> Some Expr.Lt
    | L.LE -> Some Expr.Le
    | L.GT -> Some Expr.Gt
    | L.GE -> Some Expr.Ge
    | _ -> None
  in
  match op with
  | Some op -> advance st; Expr.Binop (op, lhs, parse_add st)
  | None -> lhs

and parse_add st =
  let rec loop lhs =
    match peek st with
    | L.PLUS -> advance st; loop (Expr.Binop (Expr.Add, lhs, parse_mul st))
    | L.MINUS -> advance st; loop (Expr.Binop (Expr.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | L.STAR -> advance st; loop (Expr.Binop (Expr.Mul, lhs, parse_unary st))
    | L.SLASH -> advance st; loop (Expr.Binop (Expr.Div, lhs, parse_unary st))
    | L.IDENT "mod" ->
      advance st;
      loop (Expr.Binop (Expr.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | L.MINUS ->
    advance st;
    (* canonical form: a negated numeric literal is a constant *)
    (match peek st with
     | L.INT i -> advance st; Expr.int (-i)
     | L.FLOAT f -> advance st; Expr.float (-.f)
     | _ -> Expr.Unop (Expr.Neg, parse_unary st))
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | L.IDENT "true" -> advance st; Expr.bool true
  | L.IDENT "false" -> advance st; Expr.bool false
  | L.INT i -> advance st; Expr.int i
  | L.FLOAT f -> advance st; Expr.float f
  | L.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st L.RPAREN;
    e
  | L.IDENT "if" ->
    advance st;
    let c = parse_expr st in
    keyword st "then";
    let a = parse_expr st in
    keyword st "else";
    let b = parse_expr st in
    Expr.If (c, a, b)
  | L.IDENT "present" when peek2 st = L.LPAREN ->
    advance st; expect st L.LPAREN;
    let name = ident st in
    expect st L.RPAREN;
    Expr.Is_present name
  | L.IDENT "pre" when peek2 st = L.LPAREN ->
    advance st; expect st L.LPAREN;
    let init = parse_literal st in
    expect st L.COMMA;
    let e = parse_expr st in
    expect st L.RPAREN;
    Expr.Pre (init, e)
  | L.IDENT "current" when peek2 st = L.LPAREN ->
    advance st; expect st L.LPAREN;
    let init = parse_literal st in
    expect st L.COMMA;
    let e = parse_expr st in
    expect st L.RPAREN;
    Expr.Current (init, e)
  | L.IDENT "when" when peek2 st = L.LPAREN ->
    advance st; expect st L.LPAREN;
    let e = parse_expr st in
    expect st L.COMMA;
    let c = parse_clock st in
    expect st L.RPAREN;
    Expr.When (e, c)
  | L.IDENT "abs" when peek2 st = L.LPAREN ->
    advance st; expect st L.LPAREN;
    let e = parse_expr st in
    expect st L.RPAREN;
    Expr.Unop (Expr.Abs, e)
  | L.IDENT "min" when peek2 st = L.LPAREN ->
    advance st; expect st L.LPAREN;
    let a = parse_expr st in
    expect st L.COMMA;
    let b = parse_expr st in
    expect st L.RPAREN;
    Expr.Binop (Expr.Min, a, b)
  | L.IDENT "max" when peek2 st = L.LPAREN ->
    advance st; expect st L.LPAREN;
    let a = parse_expr st in
    expect st L.COMMA;
    let b = parse_expr st in
    expect st L.RPAREN;
    Expr.Binop (Expr.Max, a, b)
  | L.IDENT ty when peek2 st = L.DOT ->
    advance st; advance st;
    let lit = ident st in
    Expr.Const (enum_value st ty lit)
  | L.IDENT name ->
    advance st;
    (match peek st with
     | L.LPAREN ->
       advance st;
       let rec args acc =
         if peek st = L.RPAREN then List.rev acc
         else
           let a = parse_expr st in
           match peek st with
           | L.COMMA -> advance st; args (a :: acc)
           | _ -> List.rev (a :: acc)
       in
       let arguments = args [] in
       expect st L.RPAREN;
       Expr.Call (name, arguments)
     | _ -> Expr.var name)
  | t -> error st "expected an expression, found %s" (L.token_to_string t)

(* ------------------------------------------------------------------ *)
(* Structure                                                          *)
(* ------------------------------------------------------------------ *)

let parse_endpoint st =
  match peek st with
  | L.DOT ->
    advance st;
    Model.boundary (ident st)
  | L.IDENT comp ->
    advance st;
    expect st L.DOT;
    Model.at comp (ident st)
  | t -> error st "expected an endpoint, found %s" (L.token_to_string t)

let parse_port st =
  let dir =
    if at_keyword st "in" then (advance st; Model.In)
    else if at_keyword st "out" then (advance st; Model.Out)
    else error st "expected in/out"
  in
  let name = ident st in
  let ty =
    if peek st = L.COLON then begin
      advance st;
      Some (parse_type st)
    end
    else None
  in
  let clock =
    if peek st = L.AT then begin
      advance st;
      parse_clock st
    end
    else Clock.Base
  in
  let resource =
    if at_keyword st "resource" then begin
      advance st;
      match peek st with
      | L.STRING s -> advance st; Some s
      | t -> error st "expected a string, found %s" (L.token_to_string t)
    end
    else None
  in
  expect st L.SEMI;
  { Model.port_name = name; port_dir = dir; port_type = ty;
    port_clock = clock; port_resource = resource }

let parse_channel st =
  keyword st "channel";
  let name = ident st in
  expect st L.COLON;
  let src = parse_endpoint st in
  expect st L.ARROW;
  let dst = parse_endpoint st in
  let delayed = at_keyword st "delayed" in
  if delayed then advance st;
  let init =
    if at_keyword st "init" then begin
      advance st;
      Some (parse_literal st)
    end
    else None
  in
  expect st L.SEMI;
  Model.channel ~delayed ?init ~name src dst

let rec parse_behavior st : Model.behavior =
  match peek st with
  | L.IDENT "unspecified" ->
    advance st; expect st L.SEMI;
    Model.B_unspecified
  | L.IDENT "exprs" ->
    advance st; expect st L.LBRACE;
    let rec outs acc =
      match peek st with
      | L.RBRACE -> List.rev acc
      | _ ->
        let port = ident st in
        expect st L.EQ;
        let e = parse_expr st in
        expect st L.SEMI;
        outs ((port, e) :: acc)
    in
    let result = outs [] in
    expect st L.RBRACE;
    Model.B_exprs result
  | L.IDENT "dfd" -> Model.B_dfd (parse_network st "dfd")
  | L.IDENT "ssd" -> Model.B_ssd (parse_network st "ssd")
  | L.IDENT "mtd" ->
    advance st;
    let name = ident st in
    expect st L.LBRACE;
    keyword st "initial";
    let initial = ident st in
    expect st L.SEMI;
    let rec items modes transitions =
      match peek st with
      | L.IDENT "mode" ->
        advance st;
        let mname = ident st in
        expect st L.LBRACE;
        let behavior = parse_behavior st in
        expect st L.RBRACE;
        items ({ Model.mode_name = mname; mode_behavior = behavior } :: modes)
          transitions
      | L.IDENT "transition" ->
        advance st;
        let src = ident st in
        expect st L.ARROW;
        let dst = ident st in
        keyword st "when";
        let guard = parse_expr st in
        keyword st "priority";
        let priority = int_lit st in
        expect st L.SEMI;
        items modes
          ({ Model.mt_src = src; mt_dst = dst; mt_guard = guard;
             mt_priority = priority }
          :: transitions)
      | _ -> (List.rev modes, List.rev transitions)
    in
    let modes, transitions = items [] [] in
    expect st L.RBRACE;
    Model.B_mtd
      { mtd_name = name; mtd_modes = modes; mtd_initial = initial;
        mtd_transitions = transitions }
  | L.IDENT "std" ->
    advance st;
    let name = ident st in
    expect st L.LBRACE;
    keyword st "states";
    let rec state_names acc =
      match peek st with
      | L.IDENT s -> advance st; state_names (s :: acc)
      | L.SEMI -> advance st; List.rev acc
      | t -> error st "expected state name or ;, found %s" (L.token_to_string t)
    in
    let states = state_names [] in
    keyword st "initial";
    let initial = ident st in
    expect st L.SEMI;
    let rec vars acc =
      if at_keyword st "var" then begin
        advance st;
        let v = ident st in
        expect st L.EQ;
        let init = parse_literal st in
        expect st L.SEMI;
        vars ((v, init) :: acc)
      end
      else List.rev acc
    in
    let std_vars = vars [] in
    let rec transitions acc =
      if at_keyword st "transition" then begin
        advance st;
        let src = ident st in
        expect st L.ARROW;
        let dst = ident st in
        keyword st "when";
        let guard = parse_expr st in
        keyword st "priority";
        let priority = int_lit st in
        expect st L.LBRACE;
        let rec actions outs sets =
          match peek st with
          | L.IDENT "emit" ->
            advance st;
            let port = ident st in
            expect st L.EQ;
            let e = parse_expr st in
            expect st L.SEMI;
            actions ((port, e) :: outs) sets
          | L.IDENT "set" ->
            advance st;
            let v = ident st in
            expect st L.EQ;
            let e = parse_expr st in
            expect st L.SEMI;
            actions outs ((v, e) :: sets)
          | _ -> (List.rev outs, List.rev sets)
        in
        let outs, sets = actions [] [] in
        expect st L.RBRACE;
        transitions
          ({ Model.st_src = src; st_dst = dst; st_guard = guard;
             st_outputs = outs; st_updates = sets; st_priority = priority }
          :: acc)
      end
      else List.rev acc
    in
    let std_transitions = transitions [] in
    expect st L.RBRACE;
    Model.B_std
      { std_name = name; std_states = states; std_initial = initial;
        std_vars; std_transitions }
  | t -> error st "expected a behavior, found %s" (L.token_to_string t)

and parse_network st kw : Model.network =
  keyword st kw;
  let name = ident st in
  expect st L.LBRACE;
  let rec items comps channels =
    match peek st with
    | L.IDENT "component" ->
      items (parse_component_decl st :: comps) channels
    | L.IDENT "channel" -> items comps (parse_channel st :: channels)
    | _ -> (List.rev comps, List.rev channels)
  in
  let comps, channels = items [] [] in
  expect st L.RBRACE;
  { net_name = name; net_components = comps; net_channels = channels }

and parse_component_decl st : Model.component =
  keyword st "component";
  let name = ident st in
  expect st L.LBRACE;
  let rec ports acc =
    if at_keyword st "in" || at_keyword st "out" then
      ports (parse_port st :: acc)
    else List.rev acc
  in
  let comp_ports = ports [] in
  let behavior = parse_behavior st in
  expect st L.RBRACE;
  { Model.comp_name = name; comp_ports; comp_behavior = behavior }

let parse_enum_decl st =
  keyword st "enum";
  let name = ident st in
  expect st L.LBRACE;
  let rec lits acc =
    let l = ident st in
    match peek st with
    | L.COMMA -> advance st; lits (l :: acc)
    | _ -> List.rev (l :: acc)
  in
  let literals = lits [] in
  expect st L.RBRACE;
  let decl = { Dtype.enum_name = name; literals } in
  st.enums <- decl :: st.enums;
  decl

let level_of_string st = function
  | "FAA" -> Model.Faa
  | "FDA" -> Model.Fda
  | "LA" -> Model.La
  | "TA" -> Model.Ta
  | "OA" -> Model.Oa
  | other -> error st "unknown abstraction level %s" other

let parse_model st : Model.model =
  keyword st "model";
  let name = ident st in
  keyword st "level";
  let level = level_of_string st (ident st) in
  let rec enums acc =
    if at_keyword st "enum" then enums (parse_enum_decl st :: acc)
    else List.rev acc
  in
  let declared = enums [] in
  let root = parse_component_decl st in
  (match peek st with
   | L.EOF -> ()
   | t -> error st "trailing input: %s" (L.token_to_string t));
  { Model.model_name = name; model_level = level; model_root = root;
    model_enums = declared }

let parse src =
  let st = { tokens = L.tokenize src; enums = [] } in
  parse_model st

let parse_component ?(enums = []) src =
  let st = { tokens = L.tokenize src; enums } in
  let c = parse_component_decl st in
  (match peek st with
   | L.EOF -> ()
   | t -> error st "trailing input: %s" (L.token_to_string t));
  c

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src
