bench/main.mli:
