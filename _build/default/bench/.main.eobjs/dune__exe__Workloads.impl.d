bench/workloads.ml: Automode_core Automode_osek Dfd Dtype Expr List Model Mtd Printf Random Ssd Stdlib Value
