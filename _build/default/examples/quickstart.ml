(* Quickstart: build a small data-flow model with the public API, check
   it, and simulate it for a few ticks.

   Run with: dune exec examples/quickstart.exe *)

open Automode_core

let () =
  (* An atomic block in the base language: the paper's ADD example,
     out = ch1 + ch2 (Sec. 3.2). *)
  let add_block =
    Dfd.block_of_expr ~name:"ADD"
      ~inputs:[ ("ch1", Some Dtype.Tint); ("ch2", Some Dtype.Tint) ]
      ~out_type:Dtype.Tint
      Expr.(var "ch1" + var "ch2")
  in
  (* A stateful block from the standard library: a discrete integrator. *)
  let integrate = Stdblocks.integrator ~name:"INTEGRATE" () in

  (* Wire them into a DFD: (a + b) integrated over time. *)
  let net : Model.network =
    { net_name = "Quickstart";
      net_components = [ add_block; integrate ];
      net_channels =
        [ Dfd.wire "w_a" ("", "a") ("ADD", "ch1");
          Dfd.wire "w_b" ("", "b") ("ADD", "ch2");
          Dfd.wire "w_sum" ("ADD", "out") ("INTEGRATE", "in");
          Dfd.wire "w_out" ("INTEGRATE", "out") ("", "total") ] }
  in
  let component =
    Dfd.of_network
      ~ports:
        [ Model.in_port ~ty:Dtype.Tint "a";
          Model.in_port ~ty:Dtype.Tint "b";
          Model.out_port ~ty:Dtype.Tfloat "total" ]
      net
  in

  (* Structural checks: well-formedness and causality. *)
  (match Network.errors (Dfd.check ~enclosing:component net) with
   | [] -> print_endline "model checks: ok"
   | errors -> List.iter print_endline errors);

  (* Simulate 6 ticks: a = tick, b = 10. *)
  let inputs tick =
    [ ("a", Value.Present (Value.Int tick));
      ("b", Value.Present (Value.Int 10)) ]
  in
  let trace = Sim.run ~ticks:6 ~inputs component in
  print_endline "simulation trace (Fig. 1-style tick table):";
  print_string (Trace.to_string trace);

  (* Render the diagram. *)
  print_endline "\nmodel structure:";
  print_string (Render.component_to_string component)
