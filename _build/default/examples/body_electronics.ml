(* Body-electronics FAA case study: a central-locking product family.

   Shows three AutoMoDe activities on the Functional Analysis
   Architecture (paper Sec. 3.1) plus the variant motivation of the
   intro:
   1. product-family configuration (features: keyless, autolock),
   2. rule-based conflict detection - three functions drive the
      door-lock actuator - and the suggested countermeasure,
   3. prototype simulation with some functions intentionally
      unspecified.

   Run with: dune exec examples/body_electronics.exe *)

open Automode_core
open Automode_casestudy

let () =
  print_endline "Central-locking product family (FAA level)";
  print_endline "==========================================\n";

  (* the family and its variants *)
  Printf.printf "features: %s\n"
    (String.concat ", " (Variants.features Central_locking.family));
  List.iter
    (fun (label, model) ->
      let comps =
        match model.Model.model_root.Model.comp_behavior with
        | Model.B_ssd net ->
          List.map
            (fun (c : Model.component) -> c.comp_name)
            net.net_components
        | _ -> []
      in
      Printf.printf "variant %-20s: %s\n" label (String.concat ", " comps))
    (Variants.configurations Central_locking.family);

  (* conflict detection on the full variant *)
  print_endline "\nFAA rules on the full variant:";
  List.iter
    (fun f -> Format.printf "  %a@." Faa_rules.pp_finding f)
    (Central_locking.conflict_findings Central_locking.full_variant);

  (* the countermeasure *)
  print_endline "\nafter inserting the coordinating functionality:";
  List.iter
    (fun f -> Format.printf "  %a@." Faa_rules.pp_finding f)
    (Central_locking.conflict_findings Central_locking.coordinated);
  print_string (Render.component_to_string Central_locking.coordinated.Model.model_root);

  (* prototype simulation: remote lock, then crash-unlock overrides *)
  print_endline
    "\nscenario: remote lock at tick 2, crash at tick 6 (crash wins):";
  print_string (Trace.to_string (Central_locking.demo_trace ~ticks:10 ()));

  (* black-box reengineering of the body communication matrix, for scale *)
  let faa = Body_matrix.faa_of Body_matrix.handcrafted in
  Printf.printf
    "\nblack-box reengineered body FAA: %d nodes from %d matrix entries\n"
    (match faa.Model.model_root.Model.comp_behavior with
     | Model.B_ssd net -> List.length net.net_components
     | _ -> 0)
    (List.length Body_matrix.handcrafted.Automode_osek.Comm_matrix.entries)
