(* The paper's Fig. 1 / Fig. 4 example: the DoorLockControl SSD with
   message-based, time-synchronous communication.  Voltage samples arrive
   only every second tick ("-" in between), a lock request arrives at
   tick 2, a crash event at tick 6 - watch all four door commands switch
   to Unlock.

   Run with: dune exec examples/door_lock.exe *)

open Automode_core
open Automode_casestudy

let () =
  print_endline "DoorLockControl (paper Fig. 1 / Fig. 4)";
  print_endline "=======================================\n";

  (* structure: the SSD with its typed components and channels *)
  print_string (Render.component_to_string Door_lock.component);

  (* FAA rule check *)
  let findings = Faa_rules.run Door_lock.model in
  Printf.printf "\nFAA rules: %s\n" (Faa_rules.summary findings);
  List.iter
    (fun f -> Format.printf "  %a@." Faa_rules.pp_finding f)
    findings;

  (* the message-based, time-synchronous trace *)
  print_endline "\ncrash scenario trace (lock request @2, crash @6):";
  print_string (Trace.to_string (Door_lock.demo_trace ~ticks:10 ()))
