examples/deployment_flow.ml: Automode_casestudy Automode_codegen Automode_core Automode_la Automode_osek Ccd Deploy Engine_ccd Format List Pipeline Printf Render String Well_defined
