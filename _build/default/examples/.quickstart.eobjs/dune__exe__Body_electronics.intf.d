examples/body_electronics.mli:
