examples/quickstart.ml: Automode_core Dfd Dtype Expr List Model Network Render Sim Stdblocks Trace Value
