examples/deployment_flow.mli:
