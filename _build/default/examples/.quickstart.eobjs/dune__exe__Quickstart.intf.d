examples/quickstart.mli:
