examples/body_electronics.ml: Automode_casestudy Automode_core Automode_osek Body_matrix Central_locking Faa_rules Format List Model Printf Render String Trace Variants
