examples/engine_reengineering.mli:
