examples/multirate.ml: Automode_casestudy Automode_core Clock Format Sampling Sim Stdblocks Trace Value
