examples/door_lock.ml: Automode_casestudy Automode_core Door_lock Faa_rules Format List Printf Render Trace
