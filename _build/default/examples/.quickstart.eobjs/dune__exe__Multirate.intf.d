examples/multirate.mli:
