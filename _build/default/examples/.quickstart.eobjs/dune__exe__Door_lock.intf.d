examples/door_lock.mli:
