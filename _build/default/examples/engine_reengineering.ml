(* The paper's Sec. 5 case study: white-box reengineering of a gasoline
   engine controller given as an ASCET-SD model.  Implicit operation
   modes (If-Then-Else over flags from a central flag emitter) become
   explicit MTDs; the reengineered model is validated against the
   original implementation by trace comparison.

   Run with: dune exec examples/engine_reengineering.exe *)

open Automode_core
open Automode_ascet
open Automode_casestudy

let () =
  print_endline "White-box reengineering of the engine controller (Sec. 5)";
  print_endline "==========================================================\n";

  let m = Engine_ascet.ascet_model in

  (* the smell the paper reports: one central component emitting flags *)
  print_endline "flag analysis of the ASCET implementation:";
  let flags = Ascet_analysis.inferred_flags m in
  Printf.printf "  mode flags: %s\n" (String.concat ", " flags);
  List.iter
    (fun (proc, n) ->
      Printf.printf "  central flag emitter: %s writes %d flags\n" proc n)
    (Ascet_analysis.central_flag_emitters m);
  Printf.printf "  flag-dependent conditionals: %d\n\n"
    (Ascet_analysis.count_flag_conditionals ~flags m);

  (* reengineer *)
  let model, report = Engine_ascet.reengineer () in
  Format.printf "%a@." Automode_transform.Reengineer.pp_report report;

  (* show the Fig. 8 component: ThrottleRateOfChange as an explicit MTD *)
  let net =
    match model.Model.model_root.comp_behavior with
    | Model.B_dfd net -> net
    | _ -> assert false
  in
  (match Model.find_component net "throttle_rate_calc" with
   | Some comp ->
     print_endline "the Fig. 8 component after reengineering:";
     print_string (Render.component_to_string comp)
   | None -> ());

  (* validate: implementation vs reengineered model on a drive profile *)
  let ticks = 800 in
  let t_impl =
    Ascet_interp.run m ~ticks ~inputs:Engine_ascet.drive_inputs
      ~observe:Engine_ascet.observed
  in
  let inputs tick =
    List.map (fun (n, v) -> (n, Value.Present v)) (Engine_ascet.drive_inputs tick)
  in
  let t_model = Sim.run ~ticks ~inputs model.Model.model_root in
  (match
     Trace.first_divergence t_impl (Trace.restrict t_model Engine_ascet.observed)
   with
   | None ->
     Printf.printf
       "\nvalidation: implementation and reengineered model agree on %d \
        outputs over %d ms\n"
       (List.length Engine_ascet.observed)
       ticks
   | Some (tick, flow, l, r) ->
     Printf.printf "\nvalidation FAILED at %d on %s: %s vs %s\n" tick flow
       (Value.message_to_string l) (Value.message_to_string r));

  (* the global mode transition system, correct by construction *)
  let product = Engine_modes.global_mode_system in
  Printf.printf
    "\nglobal mode transition system (engine x throttle): %d modes, %d \
     transitions, deterministic: %b\n"
    (List.length product.Model.mtd_modes)
    (List.length product.Model.mtd_transitions)
    (Mtd.deterministic product)
