(* The paper's Fig. 2: explicit signal sampling with a "when" operator
   clocked at every(2, true), plus the clock calculus behind it.

   Run with: dune exec examples/multirate.exe *)

open Automode_core
open Automode_casestudy

let () =
  print_endline "Explicit sampling with when / every(2, true) (paper Fig. 2)";
  print_endline "===========================================================\n";

  (* clock calculus *)
  let c2 = Clock.every 2 Clock.Base in
  let c4 = Clock.every 2 c2 in
  Format.printf "clock a' : %s@." (Clock.to_string c2);
  Format.printf "nested   : %s  (canonical period %s)@."
    (Clock.to_string c4)
    (match Clock.canon c4 with
     | Clock.Periodic { period; _ } -> string_of_int period
     | Clock.Aperiodic _ -> "?");
  Format.printf "subclock  every(4) < every(2): %b@."
    (Clock.is_subclock ~sub:c4 ~sup:c2);
  (match Clock.meet (Clock.every 4 Clock.Base) (Clock.every 6 Clock.Base) with
   | Some m -> Format.printf "meet(every 4, every 6) = %s@." (Clock.to_string m)
   | None -> ());

  (* the Fig. 2 network: a -> when(every 2) -> a' -> B *)
  print_endline "\nfactor 2 (the figure's case):";
  print_string (Trace.to_string (Sampling.demo_trace ~ticks:8 ~factor:2 ()));

  print_endline "\nfactor 3:";
  print_string (Trace.to_string (Sampling.demo_trace ~ticks:9 ~factor:3 ()));

  (* sample-and-hold in one standard block *)
  print_endline "\nsample_hold block (when + current fused):";
  let sh =
    Stdblocks.sample_hold ~name:"SH" ~clock:c2 ~init:(Value.Int 0)
  in
  let inputs tick = [ ("in", Value.Present (Value.Int (tick * 100))) ] in
  print_string (Trace.to_string (Sim.run ~ticks:6 ~inputs sh))
