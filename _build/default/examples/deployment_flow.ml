(* The paper's Fig. 3 / Fig. 7 flow: from the engine-controller CCD
   through OSEK well-definedness checking to a two-ECU deployment,
   scheduler and CAN evaluation, and per-ECU ASCET project generation.

   Run with: dune exec examples/deployment_flow.exe *)

open Automode_core
open Automode_la
open Automode_casestudy

let () =
  print_endline "CCD deployment flow (paper Figs. 3 and 7)";
  print_endline "=========================================\n";

  (* Fig. 7: the simplified engine controller CCD *)
  print_string (Render.component_to_string (Ccd.to_component Engine_ccd.ccd));

  (* target-specific well-definedness *)
  let violations =
    Well_defined.check ~target:Well_defined.osek_fixed_priority Engine_ccd.ccd
  in
  Printf.printf "\nOSEK well-definedness violations: %d\n"
    (List.length violations);

  (* deployment onto the two-ECU TA *)
  let d = Engine_ccd.deployment in
  Format.printf "@.%a@." Deploy.pp d;
  (match Deploy.check d with
   | [] -> print_endline "deployment checks: ok"
   | ps -> List.iter print_endline ps);

  (* evaluate the schedule per ECU *)
  List.iter
    (fun (ecu, tasks) ->
      if tasks <> [] then begin
        Printf.printf "\nECU %s:\n" ecu;
        let r = Automode_osek.Scheduler.simulate ~horizon:1_000_000 tasks in
        Format.printf "%a" Automode_osek.Scheduler.pp_result r;
        Format.printf "%a"
          (Automode_osek.Scheduler.pp_timeline ~width:60)
          (Automode_osek.Scheduler.timeline ~horizon:200_000 tasks);
        List.iter
          (fun (name, bound) ->
            Printf.printf "  RTA bound %s: %s\n" name
              (match bound with
               | Some b -> string_of_int b ^ " us"
               | None -> "unschedulable"))
          (Automode_osek.Scheduler.response_time_analysis tasks)
      end)
    (Deploy.task_sets d);

  (* evaluate the bus *)
  List.iter
    (fun (bus, frames) ->
      if frames <> [] then begin
        Printf.printf "\nbus %s:\n" bus;
        let r =
          Automode_osek.Can_bus.simulate
            { Automode_osek.Can_bus.bitrate = 500_000 }
            ~horizon:1_000_000 frames
        in
        Format.printf "%a" Automode_osek.Can_bus.pp_result r
      end)
    (Deploy.bus_frames d);

  (* generated communication matrix and ASCET projects *)
  let cm = Deploy.comm_matrix d in
  print_endline "\ncommunication matrix:";
  print_string (Automode_codegen.Comm_components.summary cm);

  let projects = Automode_codegen.Ascet_project.generate d in
  List.iter
    (fun (p : Automode_codegen.Ascet_project.project) ->
      Printf.printf "\n--- generated project for %s (%d bytes) ---\n"
        p.project_ecu
        (String.length p.project_text);
      (* print only the head of each project *)
      let lines = String.split_on_char '\n' p.project_text in
      List.iteri (fun i l -> if i < 16 then print_endline l) lines;
      print_endline "  ...")
    projects;

  (* the full reengineering-to-code pipeline in one call *)
  print_endline "\nfull pipeline on the reengineered engine controller:";
  let r = Pipeline.run () in
  Format.printf "%a" Pipeline.pp_summary r
