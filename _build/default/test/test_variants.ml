(* Tests for product-family variant management (the paper's intro names
   variant multiplicity as a core complexity driver). *)

open Automode_core

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A body-electronics family: base locking + optional comfort features. *)
let family =
  let f name ports = Model.component name ~ports in
  let net : Model.network =
    { net_name = "Body";
      net_components =
        [ f "CentralLocking"
            [ Model.in_port ~ty:Dtype.Tbool "request";
              Model.out_port ~ty:Dtype.Tbool ~resource:"locks" "cmd" ];
          f "RainSensor" [ Model.out_port ~ty:Dtype.Tfloat "intensity" ];
          f "AutoWiper"
            [ Model.in_port ~ty:Dtype.Tfloat "rain";
              Model.out_port ~ty:Dtype.Tint ~resource:"wiper" "speed" ];
          f "ParkAssist"
            [ Model.in_port ~ty:Dtype.Tfloat "distance";
              Model.out_port ~ty:Dtype.Tbool ~resource:"buzzer" "warn" ] ];
      net_channels =
        [ Model.channel ~name:"rain_link"
            (Model.at "RainSensor" "intensity")
            (Model.at "AutoWiper" "rain") ] }
  in
  let model : Model.model =
    { model_name = "BodyFamily"; model_level = Model.Faa;
      model_root = Ssd.of_network net; model_enums = [] }
  in
  Variants.make model
    ~presence:
      [ ("RainSensor", Variants.Fvar "comfort");
        ("AutoWiper", Variants.Fvar "comfort");
        ("ParkAssist",
         Variants.Fand (Variants.Fvar "comfort", Variants.Fvar "premium")) ]

let components_of model =
  match model.Model.model_root.Model.comp_behavior with
  | Model.B_ssd net ->
    List.map (fun (c : Model.component) -> c.comp_name) net.net_components
  | _ -> Alcotest.fail "root"

let test_condition_eval () =
  let open Variants in
  checkb "unassigned is false" false (eval [] (Fvar "x"));
  checkb "and" true
    (eval [ ("a", true); ("b", true) ] (Fand (Fvar "a", Fvar "b")));
  checkb "or short" true (eval [ ("a", true) ] (For (Fvar "a", Fvar "b")));
  checkb "not" true (eval [] (Fnot (Fvar "a")));
  Alcotest.(check (list string)) "features" [ "a"; "b" ]
    (features_of (Fand (Fvar "a", For (Fvar "b", Fvar "a"))))

let test_family_features () =
  Alcotest.(check (list string)) "feature set" [ "comfort"; "premium" ]
    (Variants.features family)

let test_configure_base () =
  let base = Variants.configure family ~assignment:[] in
  Alcotest.(check (list string)) "only mandatory" [ "CentralLocking" ]
    (components_of base)

let test_configure_comfort () =
  let v = Variants.configure family ~assignment:[ ("comfort", true) ] in
  Alcotest.(check (list string)) "comfort trio"
    [ "CentralLocking"; "RainSensor"; "AutoWiper" ]
    (components_of v)

let test_configure_premium_requires_comfort () =
  let v = Variants.configure family ~assignment:[ ("premium", true) ] in
  checkb "premium alone adds nothing" false
    (List.mem "ParkAssist" (components_of v))

let test_channels_pruned () =
  let base = Variants.configure family ~assignment:[] in
  (match base.Model.model_root.Model.comp_behavior with
   | Model.B_ssd net -> checki "no dangling channels" 0 (List.length net.net_channels)
   | _ -> Alcotest.fail "root");
  (* every configuration passes the structural SSD checks *)
  List.iter
    (fun (label, model) ->
      let issues = Ssd.check_component model.Model.model_root in
      Alcotest.(check (list string)) (label ^ " structurally clean") []
        (Network.errors issues))
    (Variants.configurations family)

let test_all_configurations () =
  let confs = Variants.configurations family in
  checki "2^2 variants" 4 (List.length confs);
  checkb "labels distinct" true
    (let labels = List.map fst confs in
     List.length (List.sort_uniq String.compare labels) = 4)

let test_check_detects_problems () =
  Alcotest.(check (list string)) "family is sound" [] (Variants.check family);
  (* make a mandatory consumer depend on an optional provider *)
  let broken =
    { family with
      Variants.presence =
        [ ("RainSensor", Variants.Fvar "comfort") ]
        (* AutoWiper now unconditional but reads RainSensor *) }
  in
  checkb "dangling dependency flagged" true (Variants.check broken <> []);
  let unknown =
    { family with
      Variants.presence = [ ("Nonexistent", Variants.Fvar "x") ] }
  in
  checkb "unknown component flagged" true (Variants.check unknown <> [])

let test_variants_simulate () =
  (* all variants of a family with behaviors simulate without errors *)
  let blk name k =
    Dfd.block_of_expr ~name ~inputs:[ ("x", Some Dtype.Tfloat) ]
      ~out_type:Dtype.Tfloat
      Expr.(var "x" * float k)
  in
  let net : Model.network =
    { net_name = "N";
      net_components = [ blk "Base" 1.; blk "Opt" 2. ];
      net_channels =
        [ Dfd.wire "i1" ("", "u") ("Base", "x");
          Dfd.wire "i2" ("", "u") ("Opt", "x");
          Dfd.wire "o1" ("Base", "out") ("", "y_base");
          Dfd.wire "o2" ("Opt", "out") ("", "y_opt") ] }
  in
  let model : Model.model =
    { model_name = "M"; model_level = Model.Fda;
      model_root =
        Dfd.of_network
          ~ports:
            [ Model.in_port ~ty:Dtype.Tfloat "u";
              Model.out_port ~ty:Dtype.Tfloat "y_base";
              Model.out_port ~ty:Dtype.Tfloat "y_opt" ]
          net;
      model_enums = [] }
  in
  let vm = Variants.make model ~presence:[ ("Opt", Variants.Fvar "extra") ] in
  let inputs _ = [ ("u", Value.Present (Value.Float 3.)) ] in
  List.iter
    (fun (label, variant) ->
      let trace = Sim.run ~ticks:3 ~inputs variant.Model.model_root in
      let expect_opt = String.length label > 0 && label.[0] = '+' in
      checkb (label ^ " base output") true
        (Value.equal_message
           (Trace.get trace ~flow:"y_base" ~tick:0)
           (Value.Present (Value.Float 3.)));
      checkb (label ^ " optional output") true
        (Value.equal_message
           (Trace.get trace ~flow:"y_opt" ~tick:0)
           (if expect_opt then Value.Present (Value.Float 6.) else Value.Absent)))
    (Variants.configurations vm)

let () =
  Alcotest.run "automode-variants"
    [ ( "conditions",
        [ Alcotest.test_case "eval" `Quick test_condition_eval;
          Alcotest.test_case "features" `Quick test_family_features ] );
      ( "configure",
        [ Alcotest.test_case "base" `Quick test_configure_base;
          Alcotest.test_case "comfort" `Quick test_configure_comfort;
          Alcotest.test_case "premium needs comfort" `Quick test_configure_premium_requires_comfort;
          Alcotest.test_case "channels pruned" `Quick test_channels_pruned;
          Alcotest.test_case "all configurations" `Quick test_all_configurations ] );
      ( "analysis",
        [ Alcotest.test_case "check" `Quick test_check_detects_problems;
          Alcotest.test_case "variants simulate" `Quick test_variants_simulate ] ) ]
