test/test_la.ml: Alcotest Automode_core Automode_la Automode_osek Ccd Clock Cluster Deploy Dfd Dtype Expr Float Impl_type List Model String Ta Value Well_defined
