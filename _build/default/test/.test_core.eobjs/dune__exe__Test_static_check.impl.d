test/test_static_check.ml: Alcotest Automode_casestudy Automode_core Clock Dfd Dtype Expr List Model Static_check String Value
