test/test_osek.mli:
