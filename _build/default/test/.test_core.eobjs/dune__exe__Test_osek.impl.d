test/test_osek.ml: Alcotest Automode_osek Can_bus Comm_matrix Float Format Gen Ipc List Osek_task Printf QCheck QCheck_alcotest Scheduler String
