test/test_ascet.mli:
