test/test_simplify.ml: Alcotest Automode_ascet Automode_casestudy Automode_core Automode_transform Clock Expr Hashtbl List Model Option Printf QCheck QCheck_alcotest Random Sim Simplify Trace Value
