test/test_ascet.ml: Alcotest Ascet_analysis Ascet_ast Ascet_interp Ascet_lexer Ascet_parser Ascet_printer Automode_ascet Automode_core Dtype Expr List Trace Value
