test/test_static_check.mli:
