test/test_core.ml: Alcotest Automode_core Block_lib Clock Dtype Expr Fun Gen Ident List QCheck QCheck_alcotest String Value
