test/test_variants.ml: Alcotest Automode_core Dfd Dtype Expr List Model Network Sim Ssd String Trace Value Variants
