(* Tests for the expression/model simplifier: rule-level unit tests plus
   the central property — simplification never changes an expression's
   message semantics (value AND presence) on random expressions, random
   environments, and random ticks. *)

open Automode_core

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let eval ?(tick = 0) ?(env = fun _ -> Value.Absent) e =
  fst (Expr.step ~tick ~env e (Expr.init_state e))

let simp_equal msg e expected =
  let got = Simplify.expr e in
  Alcotest.(check string) msg (Expr.to_string expected) (Expr.to_string got)

(* ------------------------------------------------------------------ *)
(* Rule-level tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_constant_folding () =
  simp_equal "arith" Expr.(int 2 + (int 3 * int 4)) (Expr.int 14);
  simp_equal "comparison" Expr.(float 1. < float 2.) (Expr.bool true);
  simp_equal "nested bool"
    Expr.(bool true && not_ (bool false))
    (Expr.bool true);
  simp_equal "call" (Expr.Call ("limit", [ Expr.float 12.; Expr.float 0.; Expr.float 5. ]))
    (Expr.float 5.)

let test_folding_preserves_errors () =
  (* division by zero must NOT be folded away (nor raise at simplify time) *)
  let e = Expr.(int 1 / int 0) in
  simp_equal "div by zero kept" e e;
  let bad = Expr.(bool true + int 1) in
  simp_equal "type error kept" bad bad

let test_neutral_elements () =
  simp_equal "x + 0" Expr.(var "x" + int 0) (Expr.var "x");
  simp_equal "0 + x" Expr.(int 0 + var "x") (Expr.var "x");
  simp_equal "x - 0" Expr.(var "x" - int 0) (Expr.var "x");
  simp_equal "x * 1" Expr.(var "x" * int 1) (Expr.var "x");
  simp_equal "x / 1" Expr.(var "x" / int 1) (Expr.var "x");
  simp_equal "b && true" Expr.(var "b" && bool true) (Expr.var "b");
  simp_equal "false || b" Expr.(bool false || var "b") (Expr.var "b")

let test_unsafe_rules_not_applied () =
  (* x * 0 -> 0 would change presence: the product is absent when x is *)
  let e = Expr.(var "x" * int 0) in
  simp_equal "x * 0 kept" e e;
  (* b && false likewise *)
  let e2 = Expr.(var "b" && bool false) in
  simp_equal "b && false kept" e2 e2

let test_if_collapse () =
  simp_equal "if true" (Expr.if_ (Expr.bool true) (Expr.var "a") (Expr.var "b"))
    (Expr.var "a");
  simp_equal "if false" (Expr.if_ (Expr.bool false) (Expr.var "a") (Expr.var "b"))
    (Expr.var "b");
  (* variable condition: collapsing equal branches would change presence *)
  let e = Expr.if_ (Expr.var "c") (Expr.var "a") (Expr.var "a") in
  simp_equal "if var kept" e e

let test_negation_rules () =
  simp_equal "double not" (Expr.not_ (Expr.not_ (Expr.var "b"))) (Expr.var "b");
  simp_equal "not <" (Expr.not_ Expr.(var "x" < var "y"))
    Expr.(var "x" >= var "y")

let test_clock_rules () =
  let c2 = Clock.every 2 Clock.Base in
  simp_equal "when base" (Expr.when_ (Expr.var "x") Clock.Base) (Expr.var "x");
  simp_equal "nested same when"
    (Expr.when_ (Expr.when_ (Expr.var "x") c2) c2)
    (Expr.when_ (Expr.var "x") c2);
  let c3 = Clock.every 3 Clock.Base in
  let e = Expr.when_ (Expr.when_ (Expr.var "x") c2) c3 in
  simp_equal "different clocks kept" e e

let test_current_of_const () =
  simp_equal "current of const"
    (Expr.current (Value.Int 0) (Expr.int 5))
    (Expr.int 5)

let test_size_reduction_on_reengineered () =
  (* the symbolic execution output shrinks measurably *)
  let model, _ = Automode_transform.Reengineer.whitebox ~simplify:false
      (Automode_ascet.Ascet_parser.parse
         {|module M
input x : float = 0.0
output o : float = 0.0
task t period 1
process p on t {
  local a : float = 2.0;
  local b : float = 3.0;
  send o x * a * b + (1.0 - 1.0);
}
|})
  in
  let comp = model.Model.model_root in
  let total c =
    let n = ref 0 in
    Model.iter_components
      (fun _ (sub : Model.component) ->
        match sub.comp_behavior with
        | Model.B_exprs outs ->
          List.iter (fun (_, e) -> n := !n + Simplify.size e) outs
        | _ -> ())
      c;
    !n
  in
  let before = total comp in
  let after = total (Simplify.component comp) in
  checkb "simplification shrinks" true (after < before)

(* ------------------------------------------------------------------ *)
(* The semantics-preservation property                                *)
(* ------------------------------------------------------------------ *)

(* Random expression generator over variables v0..v3 (ints/bools mixed to
   also exercise the error-preservation paths). *)
let gen_expr : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var_name = map (Printf.sprintf "v%d") (int_range 0 3) in
  let leaf =
    oneof
      [ map (fun i -> Expr.int i) (int_range (-5) 5);
        map (fun b -> Expr.bool b) bool;
        map (fun f -> Expr.float (float_of_int f)) (int_range (-3) 3);
        map Expr.var var_name;
        map (fun v -> Expr.Is_present v) var_name ]
  in
  let binop =
    oneofl
      [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Div; Expr.And; Expr.Or; Expr.Eq;
        Expr.Lt; Expr.Le; Expr.Min; Expr.Max ]
  in
  let unop = oneofl [ Expr.Neg; Expr.Not; Expr.Abs ] in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [ (2, leaf);
            (3, map3 (fun op a b -> Expr.Binop (op, a, b)) binop
                 (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun op a -> Expr.Unop (op, a)) unop (self (depth - 1)));
            (2, map3 (fun c a b -> Expr.If (c, a, b)) (self (depth - 1))
                 (self (depth - 1)) (self (depth - 1)));
            (1, map (fun a -> Expr.pre (Value.Int 0) a) (self (depth - 1)));
            (1, map (fun a -> Expr.when_ a (Clock.every 2 Clock.Base))
                 (self (depth - 1)));
            (1, map (fun a -> Expr.current (Value.Int 0) a) (self (depth - 1)));
            (1, map2 (fun a b -> Expr.Call ("add", [ a; b ]))
                 (self (depth - 1)) (self (depth - 1))) ])
    4

let arb_expr = QCheck.make ~print:Expr.to_string gen_expr

(* Run both expressions over a deterministic random input stream and
   compare messages tick by tick; runtime errors must coincide too. *)
let streams_agree seed e1 e2 =
  let n = 16 in
  let env_at tick name =
    let st = Random.State.make [| seed; tick; Hashtbl.hash name |] in
    if Random.State.int st 4 = 0 then Value.Absent
    else
      match Random.State.int st 3 with
      | 0 -> Value.Present (Value.Int (Random.State.int st 11 - 5))
      | 1 -> Value.Present (Value.Bool (Random.State.bool st))
      | _ -> Value.Present (Value.Float (float_of_int (Random.State.int st 7)))
  in
  let step_all e =
    let rec go tick st acc =
      if tick = n then List.rev acc
      else
        let result =
          try
            let m, st' = Expr.step ~tick ~env:(env_at tick) e st in
            Ok (m, st')
          with Expr.Eval_error _ | Division_by_zero -> Error ()
        in
        match result with
        | Ok (m, st') -> go (tick + 1) st' (Some m :: acc)
        | Error () -> List.rev (None :: acc)
    in
    go 0 (Expr.init_state e) []
  in
  let s1 = step_all e1 and s2 = step_all e2 in
  (* Soundness contract (see Simplify's doc): for runs on which the
     original expression evaluates without run-time type errors, the
     simplified one must produce the identical message stream and no
     error either.  Ill-typed originals are exempt: the neutral-element
     rules assume well-typedness, like any optimizer. *)
  if List.exists Option.is_none s1 then true
  else
    List.length s1 = List.length s2
    && List.for_all2
         (fun a b ->
           match a, b with
           | Some m1, Some m2 -> Value.equal_message m1 m2
           | None, _ | _, None -> false)
         s1 s2

let prop_simplify_preserves_semantics =
  QCheck.Test.make ~name:"simplify preserves message semantics" ~count:500
    arb_expr
    (fun e -> streams_agree 7 e (Simplify.expr e))

let prop_simplify_never_grows =
  QCheck.Test.make ~name:"simplify never grows expressions" ~count:500
    arb_expr
    (fun e -> Simplify.size (Simplify.expr e) <= Simplify.size e)

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"simplify is idempotent" ~count:300 arb_expr
    (fun e ->
      let once = Simplify.expr e in
      Simplify.expr once = once)

(* Behavior-level: simplifying a whole reengineered model preserves its
   simulated trace. *)
let test_simplify_model_trace () =
  let m = Automode_casestudy.Engine_ascet.ascet_model in
  let model, _ = Automode_transform.Reengineer.whitebox m in
  let simplified = Simplify.model model in
  let inputs tick =
    List.map
      (fun (n, v) -> (n, Value.Present v))
      (Automode_casestudy.Engine_ascet.drive_inputs tick)
  in
  let t1 = Sim.run ~ticks:250 ~inputs model.Model.model_root in
  let t2 = Sim.run ~ticks:250 ~inputs simplified.Model.model_root in
  checkb "traces equal" true (Trace.equal t1 t2)

let test_simplify_sizes () =
  checki "const" 1 (Simplify.size (Expr.int 3));
  checki "binop" 3 (Simplify.size Expr.(var "x" + int 1));
  checki "call" 3 (Simplify.size (Expr.Call ("abs", [ Expr.var "x"; Expr.int 1 ])))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  ignore eval;
  Alcotest.run "automode-simplify"
    [ ( "rules",
        [ Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "errors preserved" `Quick test_folding_preserves_errors;
          Alcotest.test_case "neutral elements" `Quick test_neutral_elements;
          Alcotest.test_case "unsafe rules absent" `Quick test_unsafe_rules_not_applied;
          Alcotest.test_case "if collapse" `Quick test_if_collapse;
          Alcotest.test_case "negation" `Quick test_negation_rules;
          Alcotest.test_case "clocks" `Quick test_clock_rules;
          Alcotest.test_case "current of const" `Quick test_current_of_const;
          Alcotest.test_case "reengineered shrinks" `Quick test_size_reduction_on_reengineered;
          Alcotest.test_case "size" `Quick test_simplify_sizes ] );
      ( "properties",
        qsuite
          [ prop_simplify_preserves_semantics; prop_simplify_never_grows;
            prop_simplify_idempotent ] );
      ( "model-level",
        [ Alcotest.test_case "reengineered trace preserved" `Quick
            test_simplify_model_trace ] ) ]
