(* Tests for the ASCET-SD-like substrate: lexer, parser, printer
   round-trip, interpreter, flag analysis. *)

open Automode_core
open Automode_ascet

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let throttle_src =
  {|module ThrottleDemo

enum EngineState { Cranking, Running, Overrun }

input n : float = 0.0
input desired : float = 0.0
input current : float = 0.0
flag b_cranking : bool = false
message rate : float = 0.0
output throttle : float = 0.0

task t10 period 10
task t100 period 100

process detect_cranking on t10 {
  if n < 400.0 {
    send b_cranking true;
  } else {
    send b_cranking false;
  }
}

process rate_of_change on t10 {
  local tmp : float = 0.0;
  tmp := desired - current;
  if b_cranking {
    send rate 0.5;
  } else {
    send rate tmp;
  }
}

process actuate on t100 {
  send throttle rate * 2.0;
}
|}

let parsed () = Ascet_parser.parse throttle_src

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

let test_lexer_basic () =
  let toks = Ascet_lexer.tokenize "x := 3.5; // comment\nsend y x;" in
  let kinds = List.map (fun (t : Ascet_lexer.located) -> t.tok) toks in
  checkb "tokens" true
    (kinds
     = [ Ascet_lexer.IDENT "x"; Ascet_lexer.ASSIGN; Ascet_lexer.FLOAT 3.5;
         Ascet_lexer.SEMI; Ascet_lexer.KW "send"; Ascet_lexer.IDENT "y";
         Ascet_lexer.IDENT "x"; Ascet_lexer.SEMI; Ascet_lexer.EOF ])

let test_lexer_line_numbers () =
  let toks = Ascet_lexer.tokenize "a\nb\nc" in
  let lines =
    List.filter_map
      (fun (t : Ascet_lexer.located) ->
        match t.tok with Ascet_lexer.IDENT _ -> Some t.line | _ -> None)
      toks
  in
  Alcotest.(check (list int)) "lines" [ 1; 2; 3 ] lines

let test_lexer_operators () =
  let toks = Ascet_lexer.tokenize "a /= b <= c >= d" in
  let has tok =
    List.exists (fun (t : Ascet_lexer.located) -> t.tok = tok) toks
  in
  checkb "neq" true (has Ascet_lexer.NEQ);
  checkb "le" true (has Ascet_lexer.LE);
  checkb "ge" true (has Ascet_lexer.GE)

let test_lexer_error () =
  checkb "stray char" true
    (try ignore (Ascet_lexer.tokenize "a ? b"); false
     with Ascet_lexer.Lex_error (_, 1) -> true)

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_structure () =
  let m = parsed () in
  checks "module name" "ThrottleDemo" m.Ascet_ast.mod_name;
  checki "enums" 1 (List.length m.enums);
  checki "globals" 6 (List.length m.globals);
  checki "tasks" 2 (List.length m.tasks);
  checki "processes" 3 (List.length m.processes);
  checkb "well-formed" true (Ascet_ast.check m = [])

let test_parse_enum_literal () =
  let m =
    Ascet_parser.parse
      {|module M
enum S { A, B }
message st : S = A
task t period 1
process p on t {
  if st = B { send st A; } else { send st B; }
}
|}
  in
  checkb "well-formed" true (Ascet_ast.check m = []);
  match (List.hd m.processes).proc_body with
  | [ Ascet_ast.If (Expr.Binop (Expr.Eq, Expr.Var "st", Expr.Const (Value.Enum ("S", "B"))), _, _) ] -> ()
  | _ -> Alcotest.fail "enum literal not recognized in condition"

let test_parse_precedence () =
  let m =
    Ascet_parser.parse
      {|module M
input a : float = 0.0
output o : float = 0.0
task t period 1
process p on t { send o a + 2.0 * a; }
|}
  in
  match (List.hd m.processes).proc_body with
  | [ Ascet_ast.Send ("o", Expr.Binop (Expr.Add, _, Expr.Binop (Expr.Mul, _, _))) ] -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_call_and_not () =
  let m =
    Ascet_parser.parse
      {|module M
input a : float = 0.0
flag f : bool = false
output o : float = 0.0
task t period 1
process p on t {
  if not f and a > 1.0 { send o limit(a, 0.0, 10.0); }
}
|}
  in
  checkb "ok" true (Ascet_ast.check m = [])

let test_parse_errors () =
  checkb "missing module" true
    (try ignore (Ascet_parser.parse "input x : float = 0.0"); false
     with Ascet_parser.Parse_error _ -> true);
  checkb "unknown type" true
    (try ignore (Ascet_parser.parse "module M\ninput x : banana = 0"); false
     with Ascet_parser.Parse_error _ -> true);
  checkb "bad statement" true
    (try
       ignore
         (Ascet_parser.parse "module M\ntask t period 1\nprocess p on t { 3; }");
       false
     with Ascet_parser.Parse_error _ -> true)

let test_printer_roundtrip () =
  let m = parsed () in
  let printed = Ascet_printer.to_string m in
  let reparsed = Ascet_parser.parse printed in
  checkb "roundtrip equal" true (m = reparsed)

let test_check_catches_errors () =
  let bad_send =
    Ascet_parser.parse
      {|module M
input x : float = 0.0
task t period 1
process p on t { send x 1.0; }
|}
  in
  checkb "send to input rejected" true (Ascet_ast.check bad_send <> []);
  let bad_init =
    { (parsed ()) with
      Ascet_ast.globals =
        [ { Ascet_ast.g_name = "g"; g_kind = Ascet_ast.Message;
            g_type = Dtype.Tbool; g_init = Value.Int 3 } ] }
  in
  checkb "bad init rejected" true (Ascet_ast.check bad_init <> [])

(* ------------------------------------------------------------------ *)
(* Interpreter                                                        *)
(* ------------------------------------------------------------------ *)

let inputs_for speed tick =
  ignore tick;
  [ ("n", Value.Float speed); ("desired", Value.Float 10.);
    ("current", Value.Float 4.) ]

let test_interp_cranking_mode () =
  let m = parsed () in
  let trace =
    Ascet_interp.run m ~ticks:21 ~inputs:(inputs_for 300.)
      ~observe:[ "rate"; "b_cranking" ]
  in
  (* n < 400 -> cranking -> rate 0.5 after the first t10 activation *)
  checkb "cranking detected" true
    (Value.equal_message
       (Trace.get trace ~flow:"b_cranking" ~tick:0)
       (Value.Present (Value.Bool true)));
  checkb "rate clamped" true
    (Value.equal_message
       (Trace.get trace ~flow:"rate" ~tick:20)
       (Value.Present (Value.Float 0.5)))

let test_interp_running_mode () =
  let m = parsed () in
  let trace =
    Ascet_interp.run m ~ticks:11 ~inputs:(inputs_for 800.)
      ~observe:[ "rate"; "throttle" ]
  in
  checkb "rate = desired - current" true
    (Value.equal_message
       (Trace.get trace ~flow:"rate" ~tick:10)
       (Value.Present (Value.Float 6.)));
  (* t100 ran at tick 0, after the t10 processes (task declaration order),
     so it already saw rate = 6 *)
  checkb "throttle from same-tick rate" true
    (Value.equal_message
       (Trace.get trace ~flow:"throttle" ~tick:10)
       (Value.Present (Value.Float 12.)))

let test_interp_task_rates () =
  let m = parsed () in
  let trace =
    Ascet_interp.run m ~ticks:101 ~inputs:(inputs_for 800.)
      ~observe:[ "throttle" ]
  in
  (* at t=100 the 100ms task sees rate=6 and writes throttle=12 *)
  checkb "slow task updates at 100ms" true
    (Value.equal_message
       (Trace.get trace ~flow:"throttle" ~tick:100)
       (Value.Present (Value.Float 12.)))

let test_interp_sequential_order () =
  (* Reader before writer in the same task sees the previous value. *)
  let m =
    Ascet_parser.parse
      {|module Seq
input x : float = 0.0
message mid : float = 0.0
output before : float = 0.0
output after : float = 0.0
task t period 1
process reader_before on t { send before mid; }
process writer on t { send mid x; }
process reader_after on t { send after mid; }
|}
  in
  let inputs tick = [ ("x", Value.Float (float_of_int tick)) ] in
  let trace =
    Ascet_interp.run m ~ticks:3 ~inputs ~observe:[ "before"; "after" ]
  in
  checkb "after sees fresh" true
    (Value.equal_message
       (Trace.get trace ~flow:"after" ~tick:2)
       (Value.Present (Value.Float 2.)));
  checkb "before sees previous" true
    (Value.equal_message
       (Trace.get trace ~flow:"before" ~tick:2)
       (Value.Present (Value.Float 1.)))

let test_interp_errors () =
  let m = parsed () in
  checkb "bad input name" true
    (try
       ignore
         (Ascet_interp.step m ~inputs:[ ("nope", Value.Int 1) ] ~t_ms:0
            (Ascet_interp.init m));
       false
     with Ascet_interp.Run_error _ -> true);
  checkb "driving non-input" true
    (try
       ignore
         (Ascet_interp.step m ~inputs:[ ("rate", Value.Float 0.) ] ~t_ms:0
            (Ascet_interp.init m));
       false
     with Ascet_interp.Run_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Analysis                                                           *)
(* ------------------------------------------------------------------ *)

let test_analysis_flags () =
  let m = parsed () in
  Alcotest.(check (list string)) "declared" [ "b_cranking" ]
    (Ascet_analysis.declared_flags m);
  checkb "inferred includes declared" true
    (List.mem "b_cranking" (Ascet_analysis.inferred_flags m));
  checkb "rate is not a flag" false
    (List.mem "rate" (Ascet_analysis.inferred_flags m))

let test_analysis_readers_writers () =
  let m = parsed () in
  Alcotest.(check (list string)) "writers" [ "detect_cranking" ]
    (Ascet_analysis.flag_writers m "b_cranking");
  Alcotest.(check (list string)) "readers" [ "rate_of_change" ]
    (Ascet_analysis.flag_readers m "b_cranking")

let test_analysis_implicit_modes () =
  let m = parsed () in
  let flags = Ascet_analysis.inferred_flags m in
  let p =
    match Ascet_ast.find_process m "rate_of_change" with
    | Some p -> p
    | None -> Alcotest.fail "process missing"
  in
  (match Ascet_analysis.implicit_modes ~flags p with
   | Some split ->
     checki "prefix statements" 1 (List.length split.prefix);
     checkb "condition over flag" true
       (Expr.free_vars split.split_condition = [ "b_cranking" ])
   | None -> Alcotest.fail "mode split expected");
  let q =
    match Ascet_ast.find_process m "actuate" with
    | Some p -> p
    | None -> Alcotest.fail "process missing"
  in
  checkb "no split in plain process" true
    (Ascet_analysis.implicit_modes ~flags q = None)

let test_analysis_central_emitter () =
  let m =
    Ascet_parser.parse
      {|module Central
input n : float = 0.0
flag f1 : bool = false
flag f2 : bool = false
flag f3 : bool = false
output o : float = 0.0
task t period 1
process global_state on t {
  if n > 1.0 { send f1 true; } else { send f1 false; }
  if n > 2.0 { send f2 true; } else { send f2 false; }
  if n > 3.0 { send f3 true; } else { send f3 false; }
}
process consumer on t {
  if f1 { send o 1.0; } else { if f2 { send o 2.0; } else { send o 3.0; } }
}
|}
  in
  (match Ascet_analysis.central_flag_emitters m with
   | [ (name, count) ] ->
     checks "emitter" "global_state" name;
     checki "flag count" 3 count
   | _ -> Alcotest.fail "one central emitter expected");
  checki "flag conditionals" 2
    (Ascet_analysis.count_flag_conditionals
       ~flags:(Ascet_analysis.inferred_flags m) m)

let test_analysis_dataflow () =
  let m = parsed () in
  let edges = Ascet_analysis.process_dataflow m in
  checkb "cranking edge" true
    (List.mem ("detect_cranking", "b_cranking", "rate_of_change") edges);
  checkb "rate edge" true
    (List.mem ("rate_of_change", "rate", "actuate") edges)

let () =
  Alcotest.run "automode-ascet"
    [ ( "lexer",
        [ Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "errors" `Quick test_lexer_error ] );
      ( "parser",
        [ Alcotest.test_case "structure" `Quick test_parse_structure;
          Alcotest.test_case "enum literals" `Quick test_parse_enum_literal;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "calls and not" `Quick test_parse_call_and_not;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "printer roundtrip" `Quick test_printer_roundtrip;
          Alcotest.test_case "check" `Quick test_check_catches_errors ] );
      ( "interp",
        [ Alcotest.test_case "cranking mode" `Quick test_interp_cranking_mode;
          Alcotest.test_case "running mode" `Quick test_interp_running_mode;
          Alcotest.test_case "task rates" `Quick test_interp_task_rates;
          Alcotest.test_case "sequential order" `Quick test_interp_sequential_order;
          Alcotest.test_case "errors" `Quick test_interp_errors ] );
      ( "analysis",
        [ Alcotest.test_case "flags" `Quick test_analysis_flags;
          Alcotest.test_case "readers/writers" `Quick test_analysis_readers_writers;
          Alcotest.test_case "implicit modes" `Quick test_analysis_implicit_modes;
          Alcotest.test_case "central emitter" `Quick test_analysis_central_emitter;
          Alcotest.test_case "dataflow" `Quick test_analysis_dataflow ] ) ]
