(* Tests for the textual AutoMoDe model format: lexer, expression
   round-trips (property-based), and full-model round-trips over every
   case-study model including the reengineered engine controller. *)

open Automode_core
open Automode_syntax

let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

let test_lexer_tokens () =
  let toks =
    Syntax_lexer.tokenize "channel c : A.out -> .dst delayed init 1.5e-3;"
  in
  let kinds = List.map (fun (t : Syntax_lexer.located) -> t.tok) toks in
  checkb "arrow and dot lexed" true
    (List.mem Syntax_lexer.ARROW kinds && List.mem Syntax_lexer.DOT kinds);
  checkb "scientific float" true
    (List.exists
       (function Syntax_lexer.FLOAT f -> Float.equal f 1.5e-3 | _ -> false)
       kinds)

let test_lexer_strings () =
  match Syntax_lexer.tokenize "resource \"throttle valve\"" with
  | [ { tok = IDENT "resource"; _ }; { tok = STRING "throttle valve"; _ };
      { tok = EOF; _ } ] -> ()
  | _ -> Alcotest.fail "string token expected"

let test_lexer_errors () =
  checkb "unterminated string" true
    (try ignore (Syntax_lexer.tokenize "\"oops"); false
     with Syntax_lexer.Lex_error _ -> true);
  checkb "stray char" true
    (try ignore (Syntax_lexer.tokenize "a ? b"); false
     with Syntax_lexer.Lex_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Expression round-trip (property)                                   *)
(* ------------------------------------------------------------------ *)


let gen_expr : Expr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var_name = map (Printf.sprintf "v%d") (int_range 0 3) in
  let leaf =
    oneof
      [ map (fun i -> Expr.int i) (int_range (-9) 9);
        map (fun b -> Expr.bool b) bool;
        map (fun f -> Expr.float (float_of_int f /. 4.)) (int_range (-20) 20);
        return (Expr.Const (Value.Enum ("Gear", "D")));
        map Expr.var var_name;
        map (fun v -> Expr.Is_present v) var_name ]
  in
  let binop =
    oneofl
      [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Div; Expr.Mod; Expr.And; Expr.Or;
        Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.Min;
        Expr.Max ]
  in
  let clock =
    oneofl
      [ Clock.Base; Clock.every 2 Clock.Base;
        Clock.shift 1 (Clock.every 4 Clock.Base); Clock.event "crash" ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [ (2, leaf);
            (4, map3 (fun op a b -> Expr.Binop (op, a, b)) binop
                 (self (depth - 1)) (self (depth - 1)));
            (1, map (fun a -> Expr.Unop (Expr.Not, a)) (self (depth - 1)));
            (1, map (fun a -> Expr.Unop (Expr.Neg, a)) (self (depth - 1)));
            (1, map (fun a -> Expr.Unop (Expr.Abs, a)) (self (depth - 1)));
            (2, map3 (fun c a b -> Expr.If (c, a, b)) (self (depth - 1))
                 (self (depth - 1)) (self (depth - 1)));
            (1, map (fun a -> Expr.pre (Value.Int 0) a) (self (depth - 1)));
            (1, map2 (fun a c -> Expr.when_ a c) (self (depth - 1)) clock);
            (1, map (fun a -> Expr.current (Value.Float 0.5) a)
                 (self (depth - 1)));
            (1, map2 (fun a b -> Expr.Call ("interp1", [ a; b; a; b; a ]))
                 (self (depth - 1)) (self (depth - 1))) ])
    4

let wrap_component e =
  Model.component "Wrap"
    ~ports:
      [ Model.in_port "v0"; Model.in_port "v1"; Model.in_port "v2";
        Model.in_port "v3"; Model.out_port "out" ]
    ~behavior:(Model.B_exprs [ ("out", e) ])

(* Both parsers canonicalize negated numeric literals into constants, so
   the comparison normalizes generated expressions the same way. *)
let rec normalize_neg (e : Expr.t) : Expr.t =
  match e with
  | Expr.Unop (Expr.Neg, Expr.Const (Value.Int i)) -> Expr.int (-i)
  | Expr.Unop (Expr.Neg, Expr.Const (Value.Float f)) -> Expr.float (-.f)
  | Expr.Const _ | Expr.Var _ | Expr.Is_present _ -> e
  | Expr.Unop (op, a) ->
    let a' = normalize_neg a in
    (match op, a' with
     | Expr.Neg, Expr.Const (Value.Int i) -> Expr.int (-i)
     | Expr.Neg, Expr.Const (Value.Float f) -> Expr.float (-.f)
     | _ -> Expr.Unop (op, a'))
  | Expr.Binop (op, a, b) -> Expr.Binop (op, normalize_neg a, normalize_neg b)
  | Expr.If (c, a, b) ->
    Expr.If (normalize_neg c, normalize_neg a, normalize_neg b)
  | Expr.Pre (i, a) -> Expr.Pre (i, normalize_neg a)
  | Expr.When (a, c) -> Expr.When (normalize_neg a, c)
  | Expr.Current (i, a) -> Expr.Current (i, normalize_neg a)
  | Expr.Call (f, args) -> Expr.Call (f, List.map normalize_neg args)

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"printed expression parses back equal" ~count:500
    (QCheck.make ~print:Expr.to_string gen_expr)
    (fun e ->
      let text = Model_printer.component_to_string (wrap_component e) in
      let parsed =
        Model_parser.parse_component
          ~enums:[ { Dtype.enum_name = "Gear"; literals = [ "P"; "R"; "N"; "D" ] } ]
          text
      in
      match parsed.Model.comp_behavior with
      | Model.B_exprs [ ("out", e') ] -> normalize_neg e = normalize_neg e'
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Model round-trips                                                  *)
(* ------------------------------------------------------------------ *)

let roundtrip_component ?enums (c : Model.component) =
  let text = Model_printer.component_to_string c in
  let parsed =
    try Model_parser.parse_component ?enums text
    with Model_parser.Parse_error (msg, line) ->
      Alcotest.failf "reparse of %s failed at line %d: %s\n%s" c.comp_name
        line msg text
  in
  if parsed <> c then
    Alcotest.failf "round-trip of %s not structurally equal" c.comp_name

let casestudy_enums =
  let decl = function
    | Dtype.Tenum e -> e
    | _ -> assert false
  in
  [ decl Automode_casestudy.Door_lock.lock_status;
    decl Automode_casestudy.Door_lock.crash_status;
    decl Automode_casestudy.Door_lock.lock_command;
    decl Automode_casestudy.Engine_modes.mode_type;
    decl (Mtd.mode_enum Automode_casestudy.Throttle.mtd) ]

let test_roundtrip_door_lock () =
  roundtrip_component ~enums:casestudy_enums
    Automode_casestudy.Door_lock.component

let test_roundtrip_sampling () =
  roundtrip_component (Automode_casestudy.Sampling.component ~factor:2)

let test_roundtrip_momentum () =
  roundtrip_component Automode_casestudy.Momentum.component

let test_roundtrip_engine_modes () =
  roundtrip_component ~enums:casestudy_enums
    Automode_casestudy.Engine_modes.component

let test_roundtrip_throttle () =
  roundtrip_component ~enums:casestudy_enums
    Automode_casestudy.Throttle.component

let test_roundtrip_engine_ccd () =
  roundtrip_component Automode_casestudy.Engine_ccd.component

let test_roundtrip_reengineered () =
  (* the big one: the full reengineered engine controller *)
  let model, _ = Automode_casestudy.Engine_ascet.reengineer () in
  let text = Model_printer.to_string model in
  let parsed = Model_parser.parse text in
  checkb "root equal" true (parsed.Model.model_root = model.Model.model_root);
  checkb "level kept" true (parsed.Model.model_level = Model.Fda)

let test_roundtrip_preserves_semantics () =
  (* belt and braces: the reparsed model simulates identically *)
  let model, _ = Automode_casestudy.Engine_ascet.reengineer () in
  let parsed = Model_parser.parse (Model_printer.to_string model) in
  let inputs tick =
    List.map
      (fun (n, v) -> (n, Value.Present v))
      (Automode_casestudy.Engine_ascet.drive_inputs tick)
  in
  let t1 = Sim.run ~ticks:200 ~inputs model.Model.model_root in
  let t2 = Sim.run ~ticks:200 ~inputs parsed.Model.model_root in
  checkb "identical traces" true (Trace.equal t1 t2)

let test_model_header () =
  let m : Model.model =
    { model_name = "Tiny"; model_level = Model.La;
      model_root =
        Model.component "Tiny" ~ports:[ Model.in_port ~ty:Dtype.Tint "x" ];
      model_enums = [] }
  in
  let parsed = Model_parser.parse (Model_printer.to_string m) in
  Alcotest.(check string) "name" "Tiny" parsed.Model.model_name;
  checkb "level" true (parsed.Model.model_level = Model.La)

let test_parse_errors () =
  let bad input =
    try ignore (Model_parser.parse input); false
    with Model_parser.Parse_error _ -> true
  in
  checkb "missing header" true (bad "component C { unspecified; }");
  checkb "bad level" true (bad "model M level XXL component C { unspecified; }");
  checkb "unknown enum literal" true
    (bad
       "model M level FAA enum E { A } component C { exprs { o = E.B; } }");
  checkb "trailing input" true
    (bad "model M level FAA component C { unspecified; } garbage")

let test_unprintable_tuple () =
  let c =
    Model.component "T"
      ~ports:[ Model.in_port ~ty:(Dtype.Ttuple [ Dtype.Tint ]) "x" ]
  in
  checkb "tuple rejected" true
    (try ignore (Model_printer.component_to_string c); false
     with Model_printer.Unprintable _ -> true)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "automode-syntax"
    [ ( "lexer",
        [ Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "strings" `Quick test_lexer_strings;
          Alcotest.test_case "errors" `Quick test_lexer_errors ] );
      ( "expr-roundtrip", qsuite [ prop_expr_roundtrip ] );
      ( "model-roundtrip",
        [ Alcotest.test_case "door lock" `Quick test_roundtrip_door_lock;
          Alcotest.test_case "sampling" `Quick test_roundtrip_sampling;
          Alcotest.test_case "momentum" `Quick test_roundtrip_momentum;
          Alcotest.test_case "engine modes" `Quick test_roundtrip_engine_modes;
          Alcotest.test_case "throttle" `Quick test_roundtrip_throttle;
          Alcotest.test_case "engine ccd" `Quick test_roundtrip_engine_ccd;
          Alcotest.test_case "reengineered model" `Quick test_roundtrip_reengineered;
          Alcotest.test_case "semantics preserved" `Quick test_roundtrip_preserves_semantics;
          Alcotest.test_case "model header" `Quick test_model_header ] );
      ( "errors",
        [ Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "unprintable" `Quick test_unprintable_tuple ] ) ]
