(* Unit and property tests for the foundational core modules:
   Ident, Value, Dtype, Clock, Expr, Block_lib. *)

open Automode_core

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Ident                                                              *)
(* ------------------------------------------------------------------ *)

let test_ident_roundtrip () =
  let id = Ident.of_string "Engine.Throttle.posIn" in
  checks "to_string" "Engine.Throttle.posIn" (Ident.to_string id);
  checki "depth" 3 (Ident.depth id);
  checks "basename" "posIn" (Ident.basename id)

let test_ident_child_parent () =
  let id = Ident.v "Engine" in
  let c = Ident.child id "Idle" in
  checks "child" "Engine.Idle" (Ident.to_string c);
  (match Ident.parent c with
   | Some p -> checkb "parent" true (Ident.equal p id)
   | None -> Alcotest.fail "expected parent");
  checkb "parent of root" true (Ident.parent id = None)

let test_ident_prefix () =
  let a = Ident.of_string "A.B" and b = Ident.of_string "A.B.C" in
  checkb "prefix" true (Ident.is_prefix a b);
  checkb "not prefix" false (Ident.is_prefix b a);
  checkb "self prefix" true (Ident.is_prefix a a)

let test_ident_invalid () =
  Alcotest.check_raises "empty" (Ident.Invalid "bad identifier segment: ")
    (fun () -> ignore (Ident.v ""));
  Alcotest.check_raises "dot in segment"
    (Ident.Invalid "bad identifier segment: a.b") (fun () ->
      ignore (Ident.child (Ident.v "x") "a.b"))

let test_ident_append () =
  let a = Ident.of_string "A.B" and b = Ident.of_string "C.D" in
  checks "append" "A.B.C.D" (Ident.to_string (Ident.append a b))

(* ------------------------------------------------------------------ *)
(* Value                                                              *)
(* ------------------------------------------------------------------ *)

let test_value_arith_promotion () =
  checkb "int add" true (Value.equal (Value.add (Int 2) (Int 3)) (Int 5));
  checkb "mixed add" true
    (Value.equal (Value.add (Int 2) (Float 0.5)) (Float 2.5));
  checkb "float mul" true
    (Value.equal (Value.mul (Float 2.) (Float 4.)) (Float 8.))

let test_value_division () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Value.div (Int 1) (Int 0)));
  checkb "int div" true (Value.equal (Value.div (Int 7) (Int 2)) (Int 3))

let test_value_type_errors () =
  checkb "bool add raises" true
    (try ignore (Value.add (Bool true) (Int 1)); false
     with Value.Type_error _ -> true);
  checkb "truth of int raises" true
    (try ignore (Value.truth (Int 1)); false
     with Value.Type_error _ -> true)

let test_value_message_pp () =
  checks "absent prints as dash" "-" (Value.message_to_string Value.Absent);
  checks "present int" "23" (Value.message_to_string (Present (Int 23)));
  checks "enum literal" "Cranking"
    (Value.message_to_string (Present (Enum ("EngineMode", "Cranking"))))

let test_value_compare_total =
  QCheck.Test.make ~name:"value compare antisymmetric" ~count:200
    QCheck.(pair (int_range (-5) 5) (int_range (-5) 5))
    (fun (a, b) ->
      let va = Value.Int a and vb = Value.Int b in
      Value.compare va vb = -Value.compare vb va)

let test_value_tuple_equal () =
  let t1 = Value.Tuple [ Int 1; Bool true ] in
  let t2 = Value.Tuple [ Int 1; Bool true ] in
  let t3 = Value.Tuple [ Int 1; Bool false ] in
  checkb "tuple equal" true (Value.equal t1 t2);
  checkb "tuple unequal" false (Value.equal t1 t3)

(* ------------------------------------------------------------------ *)
(* Dtype                                                              *)
(* ------------------------------------------------------------------ *)

let engine_mode = Dtype.enum "EngineMode" [ "Cranking"; "Running"; "Overrun" ]

let test_dtype_enum () =
  let v = Dtype.enum_value engine_mode "Running" in
  checkb "has type" true (Dtype.value_has_type v engine_mode);
  checkb "wrong literal rejected" true
    (try ignore (Dtype.enum_value engine_mode "Flying"); false
     with Invalid_argument _ -> true);
  checkb "duplicate literals rejected" true
    (try ignore (Dtype.enum "E" [ "A"; "A" ]); false
     with Invalid_argument _ -> true)

let test_dtype_defaults () =
  checkb "bool default" true
    (Dtype.value_has_type (Dtype.default_value Dtype.Tbool) Dtype.Tbool);
  checkb "enum default is first literal" true
    (Value.equal (Dtype.default_value engine_mode)
       (Value.Enum ("EngineMode", "Cranking")));
  let tup = Dtype.Ttuple [ Dtype.Tint; Dtype.Tfloat ] in
  checkb "tuple default" true
    (Dtype.value_has_type (Dtype.default_value tup) tup)

let test_dtype_compat () =
  checkb "int widens to float" true
    (Dtype.compatible ~src:Dtype.Tint ~dst:Dtype.Tfloat);
  checkb "float does not narrow" false
    (Dtype.compatible ~src:Dtype.Tfloat ~dst:Dtype.Tint);
  checkb "same enum" true (Dtype.compatible ~src:engine_mode ~dst:engine_mode)

let test_dtype_type_of_value () =
  checkb "int" true (Dtype.equal (Dtype.type_of_value (Int 4)) Dtype.Tint);
  checkb "tuple" true
    (Dtype.equal
       (Dtype.type_of_value (Tuple [ Int 1; Float 2. ]))
       (Dtype.Ttuple [ Dtype.Tint; Dtype.Tfloat ]))

(* ------------------------------------------------------------------ *)
(* Clock                                                              *)
(* ------------------------------------------------------------------ *)

let test_clock_every_canon () =
  (match Clock.canon (Clock.every 2 Clock.Base) with
   | Clock.Periodic { period; start } ->
     checki "period" 2 period; checki "start" 0 start
   | Clock.Aperiodic _ -> Alcotest.fail "expected periodic");
  match Clock.canon (Clock.every 3 (Clock.every 2 Clock.Base)) with
  | Clock.Periodic { period; start } ->
    checki "nested period" 6 period; checki "nested start" 0 start
  | Clock.Aperiodic _ -> Alcotest.fail "expected periodic"

let test_clock_shift () =
  match Clock.canon (Clock.shift 2 (Clock.every 5 Clock.Base)) with
  | Clock.Periodic { period; start } ->
    checki "period" 5 period;
    checki "start" 10 start
  | Clock.Aperiodic _ -> Alcotest.fail "expected periodic"

let test_clock_active_fig2 () =
  (* Fig. 2: every(2, true) updates a' every second tick, starting at t. *)
  let c = Clock.every 2 Clock.Base in
  let pattern = List.init 6 (Clock.active c) in
  Alcotest.(check (list bool)) "activity"
    [ true; false; true; false; true; false ]
    pattern

let test_clock_subclock () =
  let fast = Clock.every 2 Clock.Base in
  let slow = Clock.every 4 Clock.Base in
  checkb "slow sub fast" true (Clock.is_subclock ~sub:slow ~sup:fast);
  checkb "fast not sub slow" false (Clock.is_subclock ~sub:fast ~sup:slow);
  checkb "all sub base" true (Clock.is_subclock ~sub:slow ~sup:Clock.Base)

let test_clock_meet () =
  let c1 = Clock.every 4 Clock.Base in
  let c2 = Clock.every 6 Clock.Base in
  (match Clock.meet c1 c2 with
   | Some m ->
     (match Clock.canon m with
      | Clock.Periodic { period; start } ->
        checki "lcm period" 12 period;
        checki "start" 0 start
      | Clock.Aperiodic _ -> Alcotest.fail "periodic expected")
   | None -> Alcotest.fail "meet should exist");
  (* Disjoint progressions: start 0 step 2 vs start 1 step 2. *)
  let odd = Clock.every 2 (Clock.shift 1 Clock.Base) in
  let even = Clock.every 2 Clock.Base in
  checkb "disjoint" true (Clock.meet odd even = None)

let test_clock_meet_is_intersection =
  QCheck.Test.make ~name:"meet = activation intersection" ~count:300
    QCheck.(quad (int_range 1 6) (int_range 0 4) (int_range 1 6) (int_range 0 4))
    (fun (p1, s1, p2, s2) ->
      let c1 = Clock.every p1 (Clock.shift s1 Clock.Base) in
      let c2 = Clock.every p2 (Clock.shift s2 Clock.Base) in
      let both t = Clock.active c1 t && Clock.active c2 t in
      match Clock.meet c1 c2 with
      | None -> List.for_all (fun t -> not (both t)) (List.init 200 Fun.id)
      | Some m ->
        List.for_all (fun t -> Clock.active m t = both t) (List.init 200 Fun.id))

let test_clock_subclock_semantic =
  QCheck.Test.make ~name:"subclock implies activation inclusion" ~count:200
    QCheck.(quad (int_range 1 6) (int_range 0 3) (int_range 1 6) (int_range 0 3))
    (fun (p1, s1, p2, s2) ->
      let c1 = Clock.every p1 (Clock.shift s1 Clock.Base) in
      let c2 = Clock.every p2 (Clock.shift s2 Clock.Base) in
      if Clock.is_subclock ~sub:c1 ~sup:c2 then
        List.for_all
          (fun t -> (not (Clock.active c1 t)) || Clock.active c2 t)
          (List.init 150 Fun.id)
      else true)

let test_clock_event () =
  let e = Clock.event "crash" in
  let schedule name tick = String.equal name "crash" && tick = 3 in
  checkb "inactive without schedule" false (Clock.active e 3);
  checkb "active per schedule" true (Clock.active ~schedule e 3);
  checkb "inactive elsewhere" false (Clock.active ~schedule e 4);
  checkb "every-over-event rejected" true
    (try ignore (Clock.canon (Clock.every 2 e)); false
     with Clock.Invalid_clock _ -> true)

let test_clock_activation_index () =
  let c = Clock.every 3 Clock.Base in
  Alcotest.(check (option int)) "index at 6" (Some 2)
    (Clock.activation_index c 6);
  Alcotest.(check (option int)) "inactive" None (Clock.activation_index c 5)

let test_clock_period_ratio () =
  let fast = Clock.every 2 Clock.Base and slow = Clock.every 10 Clock.Base in
  Alcotest.(check (option int)) "ratio" (Some 5)
    (Clock.period_ratio ~fast ~slow);
  Alcotest.(check (option int)) "non-harmonic" None
    (Clock.period_ratio ~fast:(Clock.every 3 Clock.Base) ~slow)

(* ------------------------------------------------------------------ *)
(* Expr                                                               *)
(* ------------------------------------------------------------------ *)

let env_of bindings name =
  match List.assoc_opt name bindings with
  | Some v -> Value.Present v
  | None -> Value.Absent

let eval ?(tick = 0) ?(env = fun _ -> Value.Absent) e =
  fst (Expr.step ~tick ~env e (Expr.init_state e))

let test_expr_add_block () =
  (* Paper Sec. 3.2: block ADD defined by ch1 + ch2 + ch3. *)
  let e = Expr.(var "ch1" + var "ch2" + var "ch3") in
  let env = env_of [ ("ch1", Value.Int 1); ("ch2", Value.Int 2); ("ch3", Value.Int 3) ] in
  checkb "sum" true (Value.equal_message (eval ~env e) (Present (Int 6)))

let test_expr_absent_strictness () =
  let e = Expr.(var "a" + var "b") in
  let env = env_of [ ("a", Value.Int 1) ] in
  checkb "absent operand -> absent" true
    (Value.equal_message (eval ~env e) Value.Absent)

let test_expr_is_present () =
  let e = Expr.Is_present "a" in
  checkb "absent observed" true
    (Value.equal_message (eval e) (Present (Bool false)));
  let env = env_of [ ("a", Value.Int 0) ] in
  checkb "present observed" true
    (Value.equal_message (eval ~env e) (Present (Bool true)))

let run_stream e inputs =
  (* inputs : Value.message list per tick for variable "a". *)
  let rec go tick st acc = function
    | [] -> List.rev acc
    | msg :: rest ->
      let env name = if String.equal name "a" then msg else Value.Absent in
      let out, st' = Expr.step ~tick ~env e st in
      go (tick + 1) st' (out :: acc) rest
  in
  go 0 (Expr.init_state e) [] inputs

let present i = Value.Present (Value.Int i)

let test_expr_pre () =
  let e = Expr.pre (Value.Int 0) (Expr.var "a") in
  let outs = run_stream e [ present 1; present 2; Value.Absent; present 3 ] in
  let expected = [ present 0; present 1; Value.Absent; present 2 ] in
  checkb "pre stream" true (List.for_all2 Value.equal_message outs expected)

let test_expr_when_downsampling () =
  (* Fig. 2: a' = a when every(2, true). *)
  let e = Expr.when_ (Expr.var "a") (Clock.every 2 Clock.Base) in
  let outs = run_stream e (List.init 6 present) in
  let expected =
    [ present 0; Value.Absent; present 2; Value.Absent; present 4;
      Value.Absent ]
  in
  checkb "downsampled" true (List.for_all2 Value.equal_message outs expected)

let test_expr_current_hold () =
  let e =
    Expr.current (Value.Int (-1))
      (Expr.when_ (Expr.var "a") (Clock.every 3 Clock.Base))
  in
  let outs = run_stream e (List.init 7 present) in
  let expected =
    [ present 0; present 0; present 0; present 3; present 3; present 3;
      present 6 ]
  in
  checkb "held" true (List.for_all2 Value.equal_message outs expected)

let test_expr_if_strict_condition () =
  let e = Expr.if_ (Expr.var "a" |> fun c -> Expr.(c > int 0)) (Expr.int 1) (Expr.int 2) in
  checkb "absent condition" true (Value.equal_message (eval e) Value.Absent);
  let env = env_of [ ("a", Value.Int 5) ] in
  checkb "true branch" true (Value.equal_message (eval ~env e) (present 1))

let test_expr_typecheck () =
  let tenv name =
    match name with
    | "x" -> Some Dtype.Tint
    | "f" -> Some Dtype.Tfloat
    | "b" -> Some Dtype.Tbool
    | _ -> None
  in
  (match Expr.typecheck ~tenv Expr.(var "x" + var "f") with
   | Ok ty -> checkb "promotes to float" true (Dtype.equal ty Dtype.Tfloat)
   | Error e -> Alcotest.fail e);
  (match Expr.typecheck ~tenv Expr.(var "b" + var "x") with
   | Ok _ -> Alcotest.fail "bool + int should fail"
   | Error _ -> ());
  (match Expr.typecheck ~tenv (Expr.if_ (Expr.var "b") (Expr.var "x") (Expr.var "f")) with
   | Ok ty -> checkb "if joins numerics" true (Dtype.equal ty Dtype.Tfloat)
   | Error e -> Alcotest.fail e);
  match Expr.typecheck ~tenv (Expr.var "unknown") with
  | Ok _ -> Alcotest.fail "unknown var should fail"
  | Error _ -> ()

let test_expr_clock_inference () =
  let c2 = Clock.every 2 Clock.Base in
  let cenv name =
    match name with
    | "x" -> Some Clock.Base
    | "y" -> Some c2
    | _ -> None
  in
  (match Expr.clock_of ~cenv Expr.(var "x" + var "x") with
   | Ok c -> checkb "base" true (Clock.equal c Clock.Base)
   | Error e -> Alcotest.fail e);
  (match Expr.clock_of ~cenv Expr.(var "x" + var "y") with
   | Ok _ -> Alcotest.fail "mixed clocks must fail"
   | Error _ -> ());
  (match Expr.clock_of ~cenv (Expr.when_ (Expr.var "x") c2) with
   | Ok c -> checkb "sampled" true (Clock.equal c c2)
   | Error e -> Alcotest.fail e);
  match Expr.clock_of ~cenv Expr.(var "y" + when_ (var "x") c2) with
  | Ok c -> checkb "when aligns" true (Clock.equal c c2)
  | Error e -> Alcotest.fail e

let test_expr_when_bad_subclock () =
  let c2 = Clock.every 2 Clock.Base in
  let c3 = Clock.every 3 Clock.Base in
  let cenv name = if String.equal name "y" then Some c2 else None in
  match Expr.clock_of ~cenv (Expr.when_ (Expr.var "y") c3) with
  | Ok _ -> Alcotest.fail "3 is not a subclock of 2"
  | Error _ -> ()

let test_expr_free_vars () =
  let e = Expr.(var "a" + if_ (Is_present "b") (var "a") (var "c")) in
  Alcotest.(check (list string)) "free vars" [ "a"; "b"; "c" ]
    (Expr.free_vars e)

let test_expr_inst_dependency () =
  let e = Expr.(var "a" + pre (Value.Int 0) (var "b")) in
  checkb "a instantaneous" true (Expr.depends_instantaneously_on e "a");
  checkb "b delayed" false (Expr.depends_instantaneously_on e "b");
  checkb "memory detected" true (Expr.has_memory_operator e);
  checkb "memoryless" false Expr.(has_memory_operator (var "a" + int 1))

let test_expr_pre_state_stream =
  QCheck.Test.make ~name:"pre shifts any int stream" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) small_int)
    (fun xs ->
      let e = Expr.pre (Value.Int 0) (Expr.var "a") in
      let outs = run_stream e (List.map present xs) in
      let expected = List.map present (0 :: List.filteri (fun i _ -> i < List.length xs - 1) xs) in
      List.for_all2 Value.equal_message outs expected)

(* ------------------------------------------------------------------ *)
(* Block_lib                                                          *)
(* ------------------------------------------------------------------ *)

let test_block_lib_eval () =
  checkb "limit clamps" true
    (Value.equal (Block_lib.eval "limit" [ Float 9.; Float 0.; Float 5. ]) (Float 5.));
  checkb "deadband zeroes" true
    (Value.equal (Block_lib.eval "deadband" [ Float 0.3; Float 0.5 ]) (Float 0.));
  checkb "select" true
    (Value.equal (Block_lib.eval "select" [ Bool false; Int 1; Int 2 ]) (Int 2));
  checkb "interp1 midpoint" true
    (Value.equal
       (Block_lib.eval "interp1" [ Float 5.; Float 0.; Float 0.; Float 10.; Float 100. ])
       (Float 50.))

let test_block_lib_errors () =
  checkb "unknown raises" true
    (try ignore (Block_lib.eval "nope" []); false
     with Block_lib.Unknown_function _ -> true);
  checkb "arity raises" true
    (try ignore (Block_lib.eval "add" [ Int 1 ]); false
     with Block_lib.Arity_error _ -> true)

let test_block_lib_typing () =
  (match Block_lib.result_type "add" [ Dtype.Tint; Dtype.Tfloat ] with
   | Ok ty -> checkb "promote" true (Dtype.equal ty Dtype.Tfloat)
   | Error e -> Alcotest.fail e);
  (match Block_lib.result_type "select" [ Dtype.Tbool; Dtype.Tint; Dtype.Tint ] with
   | Ok ty -> checkb "select typed" true (Dtype.equal ty Dtype.Tint)
   | Error e -> Alcotest.fail e);
  match Block_lib.result_type "select" [ Dtype.Tint; Dtype.Tint; Dtype.Tint ] with
  | Ok _ -> Alcotest.fail "bad select must fail"
  | Error _ -> ()

let test_block_lib_arity_names () =
  checkb "all names have arity" true
    (List.for_all (fun n -> Block_lib.arity n <> None) Block_lib.names)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "automode-core"
    [ ( "ident",
        [ Alcotest.test_case "roundtrip" `Quick test_ident_roundtrip;
          Alcotest.test_case "child/parent" `Quick test_ident_child_parent;
          Alcotest.test_case "prefix" `Quick test_ident_prefix;
          Alcotest.test_case "invalid segments" `Quick test_ident_invalid;
          Alcotest.test_case "append" `Quick test_ident_append ] );
      ( "value",
        [ Alcotest.test_case "arith promotion" `Quick test_value_arith_promotion;
          Alcotest.test_case "division" `Quick test_value_division;
          Alcotest.test_case "type errors" `Quick test_value_type_errors;
          Alcotest.test_case "message pp" `Quick test_value_message_pp;
          Alcotest.test_case "tuple equality" `Quick test_value_tuple_equal ]
        @ qsuite [ test_value_compare_total ] );
      ( "dtype",
        [ Alcotest.test_case "enums" `Quick test_dtype_enum;
          Alcotest.test_case "defaults" `Quick test_dtype_defaults;
          Alcotest.test_case "compatibility" `Quick test_dtype_compat;
          Alcotest.test_case "type_of_value" `Quick test_dtype_type_of_value ] );
      ( "clock",
        [ Alcotest.test_case "every canon" `Quick test_clock_every_canon;
          Alcotest.test_case "shift canon" `Quick test_clock_shift;
          Alcotest.test_case "fig2 activity" `Quick test_clock_active_fig2;
          Alcotest.test_case "subclock" `Quick test_clock_subclock;
          Alcotest.test_case "meet" `Quick test_clock_meet;
          Alcotest.test_case "event clocks" `Quick test_clock_event;
          Alcotest.test_case "activation index" `Quick test_clock_activation_index;
          Alcotest.test_case "period ratio" `Quick test_clock_period_ratio ]
        @ qsuite [ test_clock_meet_is_intersection; test_clock_subclock_semantic ] );
      ( "expr",
        [ Alcotest.test_case "ADD block" `Quick test_expr_add_block;
          Alcotest.test_case "absent strictness" `Quick test_expr_absent_strictness;
          Alcotest.test_case "is_present" `Quick test_expr_is_present;
          Alcotest.test_case "pre" `Quick test_expr_pre;
          Alcotest.test_case "when downsampling (fig2)" `Quick test_expr_when_downsampling;
          Alcotest.test_case "current hold" `Quick test_expr_current_hold;
          Alcotest.test_case "if strictness" `Quick test_expr_if_strict_condition;
          Alcotest.test_case "typecheck" `Quick test_expr_typecheck;
          Alcotest.test_case "clock inference" `Quick test_expr_clock_inference;
          Alcotest.test_case "when non-subclock" `Quick test_expr_when_bad_subclock;
          Alcotest.test_case "free vars" `Quick test_expr_free_vars;
          Alcotest.test_case "instantaneous deps" `Quick test_expr_inst_dependency ]
        @ qsuite [ test_expr_pre_state_stream ] );
      ( "block_lib",
        [ Alcotest.test_case "eval" `Quick test_block_lib_eval;
          Alcotest.test_case "errors" `Quick test_block_lib_errors;
          Alcotest.test_case "typing" `Quick test_block_lib_typing;
          Alcotest.test_case "arity table" `Quick test_block_lib_arity_names ] ) ]
