(* Integration tests over the case-study models: every figure's artifact
   simulates, checks pass, and the end-to-end pipeline holds together. *)

open Automode_core
open Automode_la
open Automode_casestudy

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let msg_at trace flow tick = Trace.get trace ~flow ~tick

(* ------------------------------------------------------------------ *)
(* Fig. 1 / Fig. 4: DoorLockControl                                   *)
(* ------------------------------------------------------------------ *)

let test_door_lock_structure () =
  let issues = Ssd.check_component Door_lock.component in
  Alcotest.(check (list string)) "SSD clean" [] (Network.errors issues);
  let findings = Faa_rules.run Door_lock.model in
  checkb "no conflicts" true
    (List.for_all
       (fun (f : Faa_rules.finding) -> f.severity <> `Conflict)
       findings)

let test_door_lock_crash_unlocks () =
  let trace = Door_lock.demo_trace ~ticks:10 () in
  (* lock command after the lock request (STD sees v_ok one tick later) *)
  let unlock = Value.Present (Dtype.enum_value Door_lock.lock_command "Unlock") in
  let lock = Value.Present (Dtype.enum_value Door_lock.lock_command "Lock") in
  (* Dispatch output is delayed by the SSD channel from LockLogic *)
  checkb "locked after request" true
    (List.exists
       (fun t -> Value.equal_message (msg_at trace "T1C" t) lock)
       [ 2; 3; 4 ]);
  (* crash at tick 6 unlocks all four doors (one SSD delay later) *)
  List.iter
    (fun door ->
      checkb (door ^ " unlocked after crash") true
        (List.exists
           (fun t -> Value.equal_message (msg_at trace door t) unlock)
           [ 6; 7; 8 ]))
    [ "T1C"; "T2C"; "T3C"; "T4C" ]

let test_door_lock_voltage_pattern () =
  (* FZG_V carries a message every second tick - the "-" pattern of Fig 1 *)
  let trace = Door_lock.demo_trace ~ticks:6 () in
  checkb "voltage present at even ticks" true
    (List.for_all
       (fun t ->
         let m = msg_at trace "FZG_V" t in
         if t mod 2 = 0 then m <> Value.Absent else m = Value.Absent)
       [ 0; 1; 2; 3; 4; 5 ])

(* ------------------------------------------------------------------ *)
(* Fig. 2: sampling                                                   *)
(* ------------------------------------------------------------------ *)

let test_sampling_downsamples () =
  let trace = Sampling.demo_trace ~ticks:6 ~factor:2 () in
  (* a' = a when every(2,true): present at even ticks only *)
  List.iter
    (fun t ->
      let m = msg_at trace "a_prime" t in
      if t mod 2 = 0 then
        checkb (Printf.sprintf "present at %d" t) true
          (Value.equal_message m (Value.Present (Value.Int (20 + t))))
      else checkb (Printf.sprintf "absent at %d" t) true (m = Value.Absent))
    [ 0; 1; 2; 3; 4; 5 ]

let test_sampling_factor_4 () =
  let trace = Sampling.demo_trace ~ticks:8 ~factor:4 () in
  checki "two samples in 8 ticks" 2
    (List.length
       (List.filter (fun m -> m <> Value.Absent)
          (Trace.column trace "a_prime")))

let test_sampling_consumer_runs_at_base () =
  let trace = Sampling.demo_trace ~ticks:4 ~factor:2 () in
  checkb "b_out present every tick" true
    (List.for_all (fun m -> m <> Value.Absent) (Trace.column trace "b_out"))

(* ------------------------------------------------------------------ *)
(* Fig. 5: momentum controller                                        *)
(* ------------------------------------------------------------------ *)

let test_momentum_structure () =
  let issues = Dfd.check_component Momentum.component in
  Alcotest.(check (list string)) "DFD clean" [] (Network.errors issues)

let test_momentum_step_response () =
  let trace = Momentum.step_response ~ticks:80 ~target:20. () in
  (* the vehicle speed converges towards the target *)
  let v_end =
    match msg_at trace "v_actual" 79 with
    | Value.Present v -> Value.to_float v
    | Value.Absent -> Alcotest.fail "speed absent"
  in
  checkb "converges towards target" true (Float.abs (v_end -. 20.) < 5.);
  (* the command respects the saturation *)
  checkb "momentum bounded" true
    (List.for_all
       (fun m ->
         match m with
         | Value.Present v -> Float.abs (Value.to_float v) <= 50.
         | Value.Absent -> true)
       (Trace.column trace "momentum"))

let test_momentum_rate_limited () =
  let trace = Momentum.step_response ~ticks:10 ~target:100. () in
  let momenta =
    List.filter_map
      (function Value.Present v -> Some (Value.to_float v) | Value.Absent -> None)
      (Trace.column trace "momentum")
  in
  let rec steps = function
    | a :: (b :: _ as rest) -> Float.abs (b -. a) :: steps rest
    | [ _ ] | [] -> []
  in
  checkb "rate limited to 2 per tick" true
    (List.for_all (fun d -> d <= 2.0 +. 1e-9) (steps momenta))

(* ------------------------------------------------------------------ *)
(* Fig. 6: engine operation modes                                     *)
(* ------------------------------------------------------------------ *)

let test_engine_modes_check () =
  (match Mtd.check Engine_modes.mtd with
   | Ok () -> ()
   | Error es -> Alcotest.fail (String.concat "; " es));
  checkb "deterministic" true (Mtd.deterministic Engine_modes.mtd);
  Alcotest.(check (list string)) "all modes reachable"
    [ "Stalled"; "Cranking"; "Idle"; "PartLoad"; "FullLoad"; "Overrun" ]
    (Mtd.reachable_modes Engine_modes.mtd)

let test_engine_modes_drive_cycle () =
  let trace = Engine_modes.demo_trace ~ticks:42 () in
  let mode_at t =
    match msg_at trace "mode" t with
    | Value.Present (Value.Enum (_, m)) -> m
    | _ -> "?"
  in
  Alcotest.(check string) "starts stalled" "Stalled" (mode_at 0);
  Alcotest.(check string) "cranks" "Cranking" (mode_at 3);
  Alcotest.(check string) "idles" "Idle" (mode_at 8);
  Alcotest.(check string) "part load" "PartLoad" (mode_at 12);
  Alcotest.(check string) "full load" "FullLoad" (mode_at 22);
  Alcotest.(check string) "overrun" "Overrun" (mode_at 27);
  (* fuel cut in overrun *)
  checkb "fuel cut in overrun" true
    (Value.equal_message (msg_at trace "fuel" 27) (Value.Present (Value.Float 0.)))

let test_engine_modes_product () =
  let prod = Engine_modes.global_mode_system in
  checki "12 joint modes" 12 (List.length prod.Model.mtd_modes);
  match Mtd.check prod with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat "; " es)

(* ------------------------------------------------------------------ *)
(* Fig. 7: engine CCD                                                 *)
(* ------------------------------------------------------------------ *)

let test_engine_ccd_check () =
  Alcotest.(check (list string)) "CCD clean" [] (Ccd.check Engine_ccd.ccd)

let test_engine_ccd_well_defined () =
  checki "no OSEK violations" 0
    (List.length
       (Well_defined.check ~target:Well_defined.osek_fixed_priority
          Engine_ccd.ccd));
  (* removing the delay reintroduces the violation *)
  let undelayed =
    { Engine_ccd.ccd with
      Ccd.channels =
        List.map
          (fun (ch : Model.channel) ->
            if String.equal ch.ch_name "idle_to_fuel" then
              { ch with ch_delayed = false }
            else ch)
          Engine_ccd.ccd.Ccd.channels }
  in
  checki "violation without delay" 1
    (List.length
       (Well_defined.check ~target:Well_defined.osek_fixed_priority undelayed))

let test_engine_ccd_simulates () =
  let trace = Engine_ccd.demo_trace ~ticks:250 () in
  (* fuel present at the 10ms rate *)
  let fuels =
    List.filter (fun m -> m <> Value.Absent) (Trace.column trace "fuel")
  in
  checki "25 fuel samples" 25 (List.length fuels);
  let diags =
    List.filter (fun m -> m <> Value.Absent) (Trace.column trace "diag")
  in
  checki "3 diag samples (100ms)" 3 (List.length diags)

let test_engine_ccd_deployment () =
  Alcotest.(check (list string)) "deployment clean" []
    (Deploy.check Engine_ccd.deployment);
  let sets = Deploy.task_sets Engine_ccd.deployment in
  List.iter
    (fun (_, tasks) ->
      if tasks <> [] then
        checkb "schedulable" true
          (Automode_osek.Scheduler.simulate ~horizon:1_000_000 tasks)
            .Automode_osek.Scheduler.schedulable)
    sets

(* ------------------------------------------------------------------ *)
(* Fig. 8: ThrottleRateOfChange                                       *)
(* ------------------------------------------------------------------ *)

let test_throttle_modes () =
  let trace = Throttle.demo_trace ~ticks:12 () in
  let mode_at t =
    match msg_at trace "mode" t with
    | Value.Present (Value.Enum (_, m)) -> m
    | _ -> "?"
  in
  Alcotest.(check string) "cranking initially" "CrankingOverrun" (mode_at 0);
  Alcotest.(check string) "fuel enabled later" "FuelEnabled" (mode_at 6);
  checkb "constant factor while cranking" true
    (Value.equal_message (msg_at trace "rate" 2) (Value.Present (Value.Float 0.5)))

(* ------------------------------------------------------------------ *)
(* Sec. 5: the engine ASCET case study                                *)
(* ------------------------------------------------------------------ *)

let test_engine_ascet_well_formed () =
  Alcotest.(check (list string)) "parses and checks" []
    (Automode_ascet.Ascet_ast.check Engine_ascet.ascet_model);
  checki "15 processes" 15
    (List.length Engine_ascet.ascet_model.Automode_ascet.Ascet_ast.processes)

let test_engine_ascet_central_emitter () =
  let emitters =
    Automode_ascet.Ascet_analysis.central_flag_emitters Engine_ascet.ascet_model
  in
  match emitters with
  | (name, count) :: _ ->
    Alcotest.(check string) "central component" "engine_state" name;
    checki "eight flags" 8 count
  | [] -> Alcotest.fail "central flag emitter expected"

let test_engine_ascet_reengineering_report () =
  let _, report = Engine_ascet.reengineer () in
  checki "processes" 15 report.Automode_transform.Reengineer.processes;
  checkb "several MTDs extracted" true
    (report.Automode_transform.Reengineer.mtds_extracted >= 5);
  checki "eight flags found" 8
    (List.length report.Automode_transform.Reengineer.flags_found)

let test_engine_ascet_equivalence () =
  (* the reengineered FDA model reproduces the implementation's behavior
     over the full drive profile *)
  let fda, _ = Engine_ascet.reengineer () in
  let ticks = 800 in
  let t_impl =
    Automode_ascet.Ascet_interp.run Engine_ascet.ascet_model ~ticks
      ~inputs:Engine_ascet.drive_inputs ~observe:Engine_ascet.observed
  in
  let inputs tick =
    List.map
      (fun (n, v) -> (n, Value.Present v))
      (Engine_ascet.drive_inputs tick)
  in
  let t_model = Sim.run ~ticks ~inputs fda.Model.model_root in
  match
    Trace.first_divergence t_impl
      (Trace.restrict t_model Engine_ascet.observed)
  with
  | None -> ()
  | Some (tick, flow, l, r) ->
    Alcotest.failf "divergence at %d on %s: impl=%s model=%s" tick flow
      (Value.message_to_string l) (Value.message_to_string r)

let test_engine_ascet_compiled_sim () =
  let fda, _ = Engine_ascet.reengineer () in
  let inputs tick =
    List.map
      (fun (n, v) -> (n, Value.Present v))
      (Engine_ascet.drive_inputs tick)
  in
  let t1 = Sim.run ~ticks:300 ~inputs fda.Model.model_root in
  let t2 =
    Sim.run_compiled ~ticks:300 ~inputs (Sim.compile fda.Model.model_root)
  in
  checkb "compiled engine model identical" true
    (Trace.equal_on ~flows:Engine_ascet.observed t1 t2)

let test_engine_ascet_throttle_mtd () =
  let fda, _ = Engine_ascet.reengineer () in
  let net =
    match fda.Model.model_root.comp_behavior with
    | Model.B_dfd net -> net
    | _ -> Alcotest.fail "root"
  in
  match Model.find_component net "throttle_rate_calc" with
  | Some { comp_behavior = Model.B_mtd mtd; _ } ->
    Alcotest.(check (list string)) "fig 8 modes"
      [ "CrankingOverrun"; "FuelEnabled" ]
      (List.map (fun (m : Model.mode) -> m.mode_name) mtd.Model.mtd_modes)
  | Some _ | None -> Alcotest.fail "ThrottleRateOfChange MTD expected"

(* ------------------------------------------------------------------ *)
(* Black-box case study                                               *)
(* ------------------------------------------------------------------ *)

let test_body_matrix () =
  Alcotest.(check (list string)) "handcrafted clean" []
    (Automode_osek.Comm_matrix.check Body_matrix.handcrafted);
  let model = Body_matrix.faa_of Body_matrix.handcrafted in
  let net =
    match model.Model.model_root.comp_behavior with
    | Model.B_ssd net -> net
    | _ -> Alcotest.fail "root"
  in
  checki "eleven nodes" 11 (List.length net.net_components)

(* ------------------------------------------------------------------ *)
(* Central-locking family (FAA + variants + coordinator)              *)
(* ------------------------------------------------------------------ *)

let test_central_locking_family () =
  Alcotest.(check (list string)) "family sound" []
    (Variants.check Central_locking.family);
  checki "four variants" 4
    (List.length (Variants.configurations Central_locking.family))

let test_central_locking_conflict_resolution () =
  let has_conflict model =
    List.exists
      (fun (f : Faa_rules.finding) -> f.rule = "actuator-conflict")
      (Central_locking.conflict_findings model)
  in
  checkb "conflict in full variant" true
    (has_conflict Central_locking.full_variant);
  checkb "coordinator resolves it" false
    (has_conflict Central_locking.coordinated);
  (* the base variant (no optional features) has a single writer: clean *)
  let base = Variants.configure Central_locking.family ~assignment:[] in
  checkb "base variant clean" false (has_conflict base)

let test_central_locking_crash_wins () =
  let trace = Central_locking.demo_trace ~ticks:10 () in
  (* remote lock (1) arrives at the coordinator one SSD delay after tick 2 *)
  checkb "remote lock seen" true
    (Value.equal_message
       (Trace.get trace ~flow:"lock_cmd" ~tick:3)
       (Value.Present (Value.Int 1)));
  (* crash at 6: unlock (0) wins the arbitration one delay later *)
  checkb "crash unlock wins" true
    (Value.equal_message
       (Trace.get trace ~flow:"lock_cmd" ~tick:7)
       (Value.Present (Value.Int 0)))

let test_central_locking_static () =
  Alcotest.(check (list string)) "statically clean" []
    (Static_check.errors
       (Static_check.model Central_locking.coordinated))

(* ------------------------------------------------------------------ *)
(* Fig. 3: the whole pipeline                                         *)
(* ------------------------------------------------------------------ *)

let test_pipeline () =
  let r = Pipeline.run ~equiv_ticks:500 () in
  checkb "LA refines FDA (bounded latency)" true r.Pipeline.la_equivalent;
  Alcotest.(check (list string)) "deployment clean" []
    r.Pipeline.deploy_problems;
  Alcotest.(check (list string)) "ccd clean" [] r.Pipeline.ccd_problems;
  checkb "every ECU schedulable" true
    (List.for_all snd r.Pipeline.schedulable);
  checki "two projects" 2 (List.length r.Pipeline.projects);
  checkb "projects non-trivial" true
    (List.for_all
       (fun (p : Automode_codegen.Ascet_project.project) ->
         String.length p.project_text > 200)
       r.Pipeline.projects);
  checkb "bus load sane" true
    (List.for_all (fun (_, l) -> l >= 0. && l < 1.) r.Pipeline.bus_load)

let () =
  Alcotest.run "automode-casestudy"
    [ ( "fig1-fig4-door-lock",
        [ Alcotest.test_case "structure" `Quick test_door_lock_structure;
          Alcotest.test_case "crash unlocks" `Quick test_door_lock_crash_unlocks;
          Alcotest.test_case "voltage pattern" `Quick test_door_lock_voltage_pattern ] );
      ( "fig2-sampling",
        [ Alcotest.test_case "downsampling" `Quick test_sampling_downsamples;
          Alcotest.test_case "factor 4" `Quick test_sampling_factor_4;
          Alcotest.test_case "consumer at base" `Quick test_sampling_consumer_runs_at_base ] );
      ( "fig5-momentum",
        [ Alcotest.test_case "structure" `Quick test_momentum_structure;
          Alcotest.test_case "step response" `Quick test_momentum_step_response;
          Alcotest.test_case "rate limiting" `Quick test_momentum_rate_limited ] );
      ( "fig6-engine-modes",
        [ Alcotest.test_case "check" `Quick test_engine_modes_check;
          Alcotest.test_case "drive cycle" `Quick test_engine_modes_drive_cycle;
          Alcotest.test_case "global product" `Quick test_engine_modes_product ] );
      ( "fig7-engine-ccd",
        [ Alcotest.test_case "check" `Quick test_engine_ccd_check;
          Alcotest.test_case "well-definedness" `Quick test_engine_ccd_well_defined;
          Alcotest.test_case "simulation" `Quick test_engine_ccd_simulates;
          Alcotest.test_case "deployment" `Quick test_engine_ccd_deployment ] );
      ( "fig8-throttle",
        [ Alcotest.test_case "modes" `Quick test_throttle_modes ] );
      ( "sec5-engine-ascet",
        [ Alcotest.test_case "well-formed" `Quick test_engine_ascet_well_formed;
          Alcotest.test_case "central emitter" `Quick test_engine_ascet_central_emitter;
          Alcotest.test_case "report" `Quick test_engine_ascet_reengineering_report;
          Alcotest.test_case "equivalence" `Slow test_engine_ascet_equivalence;
          Alcotest.test_case "fig8 MTD extracted" `Quick test_engine_ascet_throttle_mtd;
          Alcotest.test_case "compiled sim identical" `Quick test_engine_ascet_compiled_sim ] );
      ( "blackbox-body",
        [ Alcotest.test_case "matrix" `Quick test_body_matrix ] );
      ( "central-locking",
        [ Alcotest.test_case "family" `Quick test_central_locking_family;
          Alcotest.test_case "conflict resolution" `Quick test_central_locking_conflict_resolution;
          Alcotest.test_case "crash wins" `Quick test_central_locking_crash_wins;
          Alcotest.test_case "static check" `Quick test_central_locking_static ] );
      ( "fig3-pipeline",
        [ Alcotest.test_case "end to end" `Slow test_pipeline ] ) ]
