(* Tests for the transformation library: trace-equivalence oracle,
   white-box and black-box reengineering, refactorings, refinements,
   MTD -> partitionable dataflow. *)

open Automode_core
open Automode_ascet
open Automode_la
open Automode_transform

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Equiv oracle                                                       *)
(* ------------------------------------------------------------------ *)

let test_equiv_identical () =
  let blk k =
    Dfd.block_of_expr ~name:"B" ~inputs:[ ("x", Some Dtype.Tint) ]
      Expr.(var "x" * int k)
  in
  let wrap c =
    let net : Model.network =
      { net_name = "N";
        net_components = [ c ];
        net_channels =
          [ Dfd.wire "i" ("", "x") ("B", "x");
            Dfd.wire "o" ("B", "out") ("", "y") ] }
    in
    Dfd.of_network ~ports:[ Model.in_port ~ty:Dtype.Tint "x"; Model.out_port "y" ] net
  in
  (match Equiv.trace_equivalent (wrap (blk 2)) (wrap (blk 2)) with
   | Ok () -> ()
   | Error d ->
     Alcotest.failf "unexpected divergence: %s"
       (Format.asprintf "%a" Equiv.pp_divergence d));
  match Equiv.trace_equivalent (wrap (blk 2)) (wrap (blk 3)) with
  | Ok () -> Alcotest.fail "different gains must diverge"
  | Error d -> checkb "diverges early" true (d.Equiv.d_tick = 0)

let test_equiv_deterministic_inputs () =
  let ports = [ Model.in_port ~ty:Dtype.Tfloat "a"; Model.in_port ~ty:Dtype.Tbool "b" ] in
  let f1 = Equiv.random_inputs ~seed:7 ports in
  let f2 = Equiv.random_inputs ~seed:7 ports in
  checkb "same seed, same stimuli" true
    (List.for_all (fun t -> f1 t = f2 t) [ 0; 1; 5; 13 ]);
  let f3 = Equiv.random_inputs ~seed:8 ports in
  checkb "different seed differs somewhere" true
    (List.exists (fun t -> f1 t <> f3 t) [ 0; 1; 2; 3; 4; 5 ])

let test_equiv_presence () =
  let ports = [ Model.in_port ~ty:Dtype.Tint "a" ] in
  let f = Equiv.random_inputs ~seed:1 ~presence:0.0 ports in
  checkb "presence 0 yields silence" true
    (List.for_all (fun t -> f t = []) [ 0; 1; 2 ])

(* ------------------------------------------------------------------ *)
(* White-box reengineering: equivalence against the interpreter       *)
(* ------------------------------------------------------------------ *)

let throttle_src =
  {|module ThrottleDemo

input n : float = 0.0
input desired : float = 0.0
input current : float = 0.0
flag b_cranking : bool = false
message rate : float = 0.0
output throttle : float = 0.0

task t10 period 10
task t100 period 100

process detect_cranking on t10 {
  if n < 400.0 {
    send b_cranking true;
  } else {
    send b_cranking false;
  }
}

process rate_of_change on t10 {
  local tmp : float = 0.0;
  tmp := desired - current;
  if b_cranking {
    send rate 0.5;
  } else {
    send rate tmp;
  }
}

process actuate on t100 {
  send throttle rate * 2.0;
}
|}

let observed_outputs (m : Ascet_ast.t) =
  List.filter_map
    (fun (g : Ascet_ast.global) ->
      match g.g_kind with
      | Ascet_ast.Output -> Some g.g_name
      | Ascet_ast.Message | Ascet_ast.Flag | Ascet_ast.Input -> None)
    m.globals

(* Compare interpreter and reengineered-model traces on the outputs for a
   deterministic pseudo-random stimulus. *)
let check_whitebox_equiv ?(ticks = 250) ~seed (m : Ascet_ast.t) =
  let model, _report = Reengineer.whitebox m in
  let comp = model.Model.model_root in
  let inputs_v tick =
    let state = Random.State.make [| seed; tick |] in
    List.filter_map
      (fun (g : Ascet_ast.global) ->
        match g.g_kind with
        | Ascet_ast.Input ->
          let v =
            match g.g_type with
            | Dtype.Tbool -> Value.Bool (Random.State.bool state)
            | Dtype.Tint -> Value.Int (Random.State.int state 100)
            | Dtype.Tfloat ->
              Value.Float (Random.State.float state 1000. -. 500.)
            | Dtype.Tenum _ | Dtype.Ttuple _ -> g.g_init
          in
          Some (g.g_name, v)
        | Ascet_ast.Message | Ascet_ast.Flag | Ascet_ast.Output -> None)
      m.globals
  in
  let outs = observed_outputs m in
  let t_ascet = Ascet_interp.run m ~ticks ~inputs:inputs_v ~observe:outs in
  let sim_inputs tick =
    List.map (fun (n, v) -> (n, Value.Present v)) (inputs_v tick)
  in
  let t_model = Sim.run ~ticks ~inputs:sim_inputs comp in
  let t_model = Trace.restrict t_model outs in
  match Trace.first_divergence t_ascet t_model with
  | None -> ()
  | Some (tick, flow, l, r) ->
    Alcotest.failf "divergence at tick %d on %s: ascet=%s model=%s" tick flow
      (Value.message_to_string l) (Value.message_to_string r)

let test_whitebox_throttle_equiv () =
  let m = Ascet_parser.parse throttle_src in
  check_whitebox_equiv ~seed:11 m;
  check_whitebox_equiv ~seed:12 m

let test_whitebox_report () =
  let m = Ascet_parser.parse throttle_src in
  let _, report = Reengineer.whitebox m in
  checki "processes" 3 report.Reengineer.processes;
  (* only rate_of_change splits on a flag; detect_cranking branches on a
     raw input, which is not an implicit mode *)
  checki "mtds" 1 report.Reengineer.mtds_extracted;
  checkb "flag found" true (List.mem "b_cranking" report.Reengineer.flags_found);
  checkb "components include holds" true (report.Reengineer.components > 3)

let test_whitebox_mtd_structure () =
  let m = Ascet_parser.parse throttle_src in
  let mode_naming = function
    | "rate_of_change" -> Some ("CrankingOverrun", "FuelEnabled")
    | _ -> None
  in
  let model, _ = Reengineer.whitebox ~mode_naming m in
  let root = model.Model.model_root in
  let net =
    match root.comp_behavior with
    | Model.B_dfd net -> net
    | _ -> Alcotest.fail "root must be a DFD"
  in
  match Model.find_component net "rate_of_change" with
  | Some { comp_behavior = Model.B_mtd mtd; _ } ->
    Alcotest.(check (list string)) "modes"
      [ "CrankingOverrun"; "FuelEnabled" ]
      (List.map (fun (m : Model.mode) -> m.mode_name) mtd.mtd_modes);
    Alcotest.(check string) "initial" "FuelEnabled" mtd.mtd_initial;
    (match Mtd.check mtd with
     | Ok () -> ()
     | Error es -> Alcotest.fail (String.concat "; " es))
  | Some _ -> Alcotest.fail "rate_of_change should be an MTD"
  | None -> Alcotest.fail "component missing"

(* Sequential-order semantics: reader before/after writer. *)
let test_whitebox_order_semantics () =
  let m =
    Ascet_parser.parse
      {|module Seq
input x : float = 0.0
message mid : float = 0.0
output before : float = 0.0
output after : float = 0.0
task t period 1
process reader_before on t { send before mid; }
process writer on t { send mid x; }
process reader_after on t { send after mid; }
|}
  in
  check_whitebox_equiv ~ticks:50 ~seed:3 m

(* Accumulator: a process reading the global it writes (self-feedback). *)
let test_whitebox_accumulator () =
  let m =
    Ascet_parser.parse
      {|module Accu
input x : float = 0.0
message acc : float = 0.0
output total : float = 0.0
task t period 5
process integrate on t {
  send acc acc + x;
  send total acc;
}
|}
  in
  check_whitebox_equiv ~ticks:60 ~seed:5 m

(* Cross-rate communication both directions. *)
let test_whitebox_cross_rate () =
  let m =
    Ascet_parser.parse
      {|module Cross
input x : float = 0.0
message fast_sig : float = 0.0
message slow_sig : float = 0.0
output o_fast : float = 0.0
output o_slow : float = 0.0
task fast period 2
task slow period 10
process producer_fast on fast { send fast_sig x + 1.0; }
process consumer_slow on slow {
  send o_slow fast_sig * 10.0;
  send slow_sig x - 1.0;
}
process consumer_fast on fast { send o_fast slow_sig + fast_sig; }
|}
  in
  check_whitebox_equiv ~ticks:100 ~seed:9 m

(* Conditional write: a global updated in only one branch must hold its
   previous value in the other. *)
let test_whitebox_conditional_write () =
  let m =
    Ascet_parser.parse
      {|module CondWrite
input x : float = 0.0
flag enable : bool = false
message latch : float = 0.0
output o : float = 0.0
task ctl period 4
task t period 4
process control on ctl {
  if x > 0.0 { send enable true; } else { send enable false; }
}
process latcher on t {
  if enable {
    send latch x;
  }
  send o latch;
}
|}
  in
  check_whitebox_equiv ~ticks:80 ~seed:21 m

let test_whitebox_rejects_double_writer () =
  let m =
    Ascet_parser.parse
      {|module Dup
message g : float = 0.0
output o : float = 0.0
task t period 1
process a on t { send g 1.0; }
process b on t { send g 2.0; }
process c on t { send o g; }
|}
  in
  checkb "double writer rejected" true
    (try ignore (Reengineer.whitebox m); false
     with Reengineer.Unsupported _ -> true)

(* Random well-typed ASCET programs: the strongest reengineering test.
   The generator owns the single-writer discipline (each global has one
   pre-assigned writer process) and produces float expressions, boolean
   flag logic and arbitrarily nested conditionals across two task rates;
   the property requires interpreter/model trace equality on all output
   globals. *)

module Random_ascet = struct
  open Automode_ascet

  type spec = { seed : int; n_procs : int }

  let inputs = [ "i0"; "i1"; "i2"; "i3" ]
  let flags = [ "f0"; "f1" ]
  let messages = [ "m0"; "m1"; "m2"; "m3" ]
  let outputs = [ "o0"; "o1"; "o2" ]

  let gen_float_expr st ~locals ~depth =
    let rec go depth =
      if depth = 0 || Random.State.int st 3 = 0 then
        match Random.State.int st 3 with
        | 0 -> Expr.float (float_of_int (Random.State.int st 9 - 4))
        | 1 ->
          let pool = inputs @ messages @ locals in
          Expr.var (List.nth pool (Random.State.int st (List.length pool)))
        | _ -> Expr.float 1.5
      else
        let a = go (depth - 1) in
        let b = go (depth - 1) in
        match Random.State.int st 5 with
        | 0 -> Expr.Binop (Expr.Add, a, b)
        | 1 -> Expr.Binop (Expr.Sub, a, b)
        | 2 -> Expr.Binop (Expr.Mul, a, Expr.float 0.5)
        | 3 -> Expr.Call ("limit", [ a; Expr.float (-50.); Expr.float 50. ])
        | _ -> Expr.Binop (Expr.Max, a, b)
    in
    go depth

  let gen_cond st ~locals =
    if Random.State.int st 2 = 0 then
      Expr.var (List.nth flags (Random.State.int st (List.length flags)))
    else
      Expr.Binop
        ( Expr.Lt,
          gen_float_expr st ~locals ~depth:1,
          gen_float_expr st ~locals ~depth:1 )

  let rec gen_stmts st ~owned ~locals ~depth ~budget =
    if budget <= 0 then []
    else
      let roll = Random.State.int st 4 in
      let stmt =
        (* the If case must be depth-guarded unconditionally, otherwise a
           process that owns no globals would recurse forever *)
        if roll = 3 && depth > 0 then
          Ascet_ast.If
            ( gen_cond st ~locals,
              gen_stmts st ~owned ~locals ~depth:(depth - 1) ~budget:2,
              gen_stmts st ~owned ~locals ~depth:(depth - 1) ~budget:2 )
        else if roll >= 1 && owned <> [] then
          Ascet_ast.Send
            ( List.nth owned (Random.State.int st (List.length owned)),
              gen_float_expr st ~locals ~depth:2 )
        else
          Ascet_ast.Assign
            ( List.nth locals (Random.State.int st (List.length locals)),
              gen_float_expr st ~locals ~depth:2 )
      in
      stmt :: gen_stmts st ~owned ~locals ~depth ~budget:(budget - 1)

  let generate { seed; n_procs } : Ascet_ast.t =
    let st = Random.State.make [| seed |] in
    (* partition writable globals among the data processes *)
    let writable = messages @ outputs in
    let owners = Array.make (List.length writable) 0 in
    Array.iteri (fun i _ -> owners.(i) <- Random.State.int st n_procs) owners;
    let owned_by p =
      List.filteri (fun i _ -> owners.(i) = p) writable
    in
    let task_of _p = if Random.State.int st 2 = 0 then "tA" else "tB" in
    let flag_proc : Ascet_ast.process =
      { proc_name = "state";
        proc_task = "tA";
        proc_locals = [];
        proc_body =
          List.map
            (fun f ->
              Ascet_ast.If
                ( Expr.Binop
                    ( Expr.Gt,
                      Expr.var (List.nth inputs (Random.State.int st 4)),
                      Expr.float (float_of_int (Random.State.int st 5 - 2)) ),
                  [ Ascet_ast.Send (f, Expr.bool true) ],
                  [ Ascet_ast.Send (f, Expr.bool false) ] ))
            flags }
    in
    let data_procs =
      List.init n_procs (fun p ->
          let locals = [ "tmp" ] in
          { Ascet_ast.proc_name = Printf.sprintf "p%d" p;
            proc_task = task_of p;
            proc_locals = [ ("tmp", Dtype.Tfloat, Value.Float 0.) ];
            proc_body =
              gen_stmts st ~owned:(owned_by p) ~locals ~depth:2 ~budget:4 })
    in
    { Ascet_ast.mod_name = "Rand";
      enums = [];
      globals =
        List.map
          (fun i ->
            { Ascet_ast.g_name = i; g_kind = Ascet_ast.Input;
              g_type = Dtype.Tfloat; g_init = Value.Float 0. })
          inputs
        @ List.map
            (fun f ->
              { Ascet_ast.g_name = f; g_kind = Ascet_ast.Flag;
                g_type = Dtype.Tbool; g_init = Value.Bool false })
            flags
        @ List.map
            (fun m ->
              { Ascet_ast.g_name = m; g_kind = Ascet_ast.Message;
                g_type = Dtype.Tfloat; g_init = Value.Float 0. })
            messages
        @ List.map
            (fun o ->
              { Ascet_ast.g_name = o; g_kind = Ascet_ast.Output;
                g_type = Dtype.Tfloat; g_init = Value.Float 0. })
            outputs;
      tasks =
        [ { Ascet_ast.task_name = "tA"; period_ms = 2 };
          { Ascet_ast.task_name = "tB"; period_ms = 6 } ];
      processes = flag_proc :: data_procs }

  let input_stream seed tick =
    let st = Random.State.make [| seed; tick |] in
    List.map
      (fun i -> (i, Value.Float (Random.State.float st 10. -. 5.)))
      inputs
end

let prop_whitebox_random_programs =
  QCheck.Test.make ~name:"whitebox equivalence on random ASCET programs"
    ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 2 5))
    (fun (seed, n_procs) ->
      let m = Random_ascet.generate { Random_ascet.seed; n_procs } in
      match Ascet_ast.check m with
      | _ :: _ -> QCheck.assume_fail () (* generator bug guard *)
      | [] ->
        let ticks = 60 in
        let model, _ = Reengineer.whitebox m in
        let t_impl =
          Ascet_interp.run m ~ticks
            ~inputs:(Random_ascet.input_stream seed)
            ~observe:Random_ascet.outputs
        in
        let sim_inputs tick =
          List.map
            (fun (n, v) -> (n, Value.Present v))
            (Random_ascet.input_stream seed tick)
        in
        let t_model =
          Trace.restrict
            (Sim.run ~ticks ~inputs:sim_inputs model.Model.model_root)
            Random_ascet.outputs
        in
        Trace.first_divergence t_impl t_model = None)

(* ------------------------------------------------------------------ *)
(* Black-box reengineering                                            *)
(* ------------------------------------------------------------------ *)

let test_blackbox_structure () =
  let module CM = Automode_osek.Comm_matrix in
  let cm =
    { CM.entries =
        [ CM.entry ~signal:"door_fl" ~sender:"DoorFL" ~receivers:[ "BodyController" ] ();
          CM.entry ~signal:"lock_cmd" ~sender:"BodyController"
            ~receivers:[ "DoorFL"; "DoorFR" ] () ] }
  in
  let model = Reengineer.blackbox ~name:"Body" cm in
  checkb "FAA level" true (model.Model.model_level = Model.Faa);
  let net =
    match model.Model.model_root.comp_behavior with
    | Model.B_ssd net -> net
    | _ -> Alcotest.fail "root must be an SSD"
  in
  checki "3 nodes" 3 (List.length net.net_components);
  checki "3 channels" 3 (List.length net.net_channels);
  checkb "all unspecified" true
    (List.for_all
       (fun (c : Model.component) -> c.comp_behavior = Model.B_unspecified)
       net.net_components);
  (* the partial FAA must pass the structural rules *)
  let findings = Faa_rules.run model in
  checkb "no conflicts" true
    (List.for_all (fun (f : Faa_rules.finding) -> f.severity <> `Conflict) findings)

let test_blackbox_generated_matrix () =
  let cm =
    Automode_osek.Comm_matrix.generate_body_electronics ~seed:3 ~nodes:8
      ~signals:40
  in
  checkb "matrix well-formed" true (Automode_osek.Comm_matrix.check cm = []);
  let model = Reengineer.blackbox ~name:"BodyGen" cm in
  let issues = Ssd.check_component model.Model.model_root in
  Alcotest.(check (list string)) "ssd clean" [] (Network.errors issues)

(* ------------------------------------------------------------------ *)
(* Refactoring: MTD -> mode-port DFD                                  *)
(* ------------------------------------------------------------------ *)

let throttle_mtd_comp =
  let mtd : Model.mtd =
    { mtd_name = "Throttle";
      mtd_modes =
        [ { mode_name = "FuelEnabled";
            mode_behavior =
              Model.B_exprs [ ("rate", Expr.(var "desired" - var "current")) ] };
          { mode_name = "CrankingOverrun";
            mode_behavior = Model.B_exprs [ ("rate", Expr.float 0.5) ] } ];
      mtd_initial = "FuelEnabled";
      mtd_transitions =
        [ { mt_src = "FuelEnabled"; mt_dst = "CrankingOverrun";
            mt_guard = Expr.var "cranking"; mt_priority = 0 };
          { mt_src = "CrankingOverrun"; mt_dst = "FuelEnabled";
            mt_guard = Expr.not_ (Expr.var "cranking"); mt_priority = 0 } ] }
  in
  Model.component "Throttle"
    ~ports:
      [ Model.in_port ~ty:Dtype.Tbool "cranking";
        Model.in_port ~ty:Dtype.Tfloat "desired";
        Model.in_port ~ty:Dtype.Tfloat "current";
        Model.out_port ~ty:Dtype.Tfloat "rate" ]
    ~behavior:(Model.B_mtd mtd)

let test_refactor_mode_port_equiv () =
  let dfd = Refactor.mtd_to_mode_port_dfd throttle_mtd_comp in
  (* same behavior on the original ports *)
  (match
     Equiv.equivalent_on_runs ~runs:5 ~ticks:60 ~flows:[ "rate" ]
       throttle_mtd_comp dfd
   with
   | Ok () -> ()
   | Error (seed, d) ->
     Alcotest.failf "seed %d: tick %d flow %s" seed d.Equiv.d_tick d.Equiv.d_flow);
  (* and an explicit mode port appears *)
  checkb "mode port added" true
    (List.exists
       (fun (p : Model.port) ->
         p.port_dir = Model.Out && String.equal p.port_name "mode")
       dfd.comp_ports)

let test_refactor_mode_port_structure () =
  let dfd = Refactor.mtd_to_mode_port_dfd throttle_mtd_comp in
  match dfd.comp_behavior with
  | Model.B_dfd net ->
    (* selector + 2 modes + mux *)
    checki "four blocks" 4 (List.length net.net_components);
    Alcotest.(check (list string)) "no structural errors" []
      (Network.errors (Dfd.check ~enclosing:dfd net));
    checkb "mode blocks carry mode ports" true
      (List.for_all
         (fun (c : Model.component) ->
           (not (String.length c.comp_name > 9
                 && String.sub c.comp_name 0 9 = "Throttle_"))
           || c.comp_name = "Throttle_mux"
           || c.comp_name = "Throttle_selector"
           || List.exists
                (fun (p : Model.port) -> p.port_name = "mode")
                c.comp_ports)
         net.net_components)
  | _ -> Alcotest.fail "expected DFD behavior"

let test_refactor_rejects_stateful_modes () =
  let stateful =
    { throttle_mtd_comp with
      comp_behavior =
        (match throttle_mtd_comp.comp_behavior with
         | Model.B_mtd mtd ->
           Model.B_mtd
             { mtd with
               mtd_modes =
                 [ { mode_name = "FuelEnabled";
                     mode_behavior =
                       Model.B_exprs
                         [ ("rate", Expr.pre (Value.Float 0.) (Expr.var "desired")) ] };
                   List.nth mtd.mtd_modes 1 ] }
         | b -> b) }
  in
  checkb "stateful mode rejected" true
    (try ignore (Refactor.mtd_to_mode_port_dfd stateful); false
     with Refactor.Not_applicable _ -> true)

(* ------------------------------------------------------------------ *)
(* Refactoring: coordinator insertion                                 *)
(* ------------------------------------------------------------------ *)

let conflicted_model : Model.model =
  let f name =
    Model.component name
      ~ports:
        [ Model.in_port ~ty:Dtype.Tfloat "v";
          Model.out_port ~ty:Dtype.Tfloat ~resource:"throttle" "u" ]
  in
  let net : Model.network =
    { net_name = "Veh";
      net_components = [ f "Cruise"; f "Traction" ];
      net_channels = [] }
  in
  { model_name = "Veh"; model_level = Model.Faa;
    model_root = Ssd.of_network net; model_enums = [] }

let test_coordinator_resolves_conflict () =
  let before = Faa_rules.run conflicted_model in
  checkb "conflict before" true
    (List.exists (fun (f : Faa_rules.finding) -> f.rule = "actuator-conflict") before);
  let fixed = Refactor.insert_coordinator ~resource:"throttle" conflicted_model in
  let after = Faa_rules.run fixed in
  checkb "conflict resolved" false
    (List.exists (fun (f : Faa_rules.finding) -> f.rule = "actuator-conflict") after);
  (* coordinator present and wired *)
  match fixed.Model.model_root.comp_behavior with
  | Model.B_ssd net ->
    checkb "coordinator added" true
      (Model.find_component net "coordinate_throttle" <> None);
    checki "wiring channels" 2 (List.length net.net_channels)
  | _ -> Alcotest.fail "root"

let test_coordinator_needs_conflict () =
  let single =
    { conflicted_model with
      model_root =
        (match conflicted_model.model_root.comp_behavior with
         | Model.B_ssd net ->
           Ssd.of_network
             { net with net_components = [ List.hd net.net_components ] }
         | _ -> assert false) }
  in
  checkb "not applicable" true
    (try ignore (Refactor.insert_coordinator ~resource:"throttle" single); false
     with Refactor.Not_applicable _ -> true)

(* ------------------------------------------------------------------ *)
(* Refactoring: grouping and renaming                                 *)
(* ------------------------------------------------------------------ *)

let chain_net : Model.network =
  let blk name = Dfd.block_of_expr ~name ~inputs:[ ("x", Some Dtype.Tint) ]
      ~out_type:Dtype.Tint Expr.(var "x" + int 1)
  in
  { net_name = "Chain";
    net_components = [ blk "A"; blk "B"; blk "C" ];
    net_channels =
      [ Dfd.wire "i" ("", "src") ("A", "x");
        Dfd.wire "ab" ("A", "out") ("B", "x");
        Dfd.wire "bc" ("B", "out") ("C", "x");
        Dfd.wire "o" ("C", "out") ("", "dst") ] }

let chain_ports =
  [ Model.in_port ~ty:Dtype.Tint "src"; Model.out_port ~ty:Dtype.Tint "dst" ]

let test_group_components_preserves_traces () =
  let grouped =
    Refactor.group_components ~kind:`Dfd ~names:[ "A"; "B" ] ~group_name:"AB"
      chain_net
  in
  let original = Dfd.of_network ~ports:chain_ports chain_net in
  let restructured = Dfd.of_network ~ports:chain_ports grouped in
  (match Equiv.trace_equivalent ~ticks:20 original restructured with
   | Ok () -> ()
   | Error d -> Alcotest.failf "diverged at %d on %s" d.Equiv.d_tick d.Equiv.d_flow);
  checkb "group exists" true (Model.find_component grouped "AB" <> None);
  checki "two top components" 2 (List.length grouped.net_components)

let test_rename_component () =
  let renamed = Refactor.rename_component ~old_name:"B" ~new_name:"Middle" chain_net in
  checkb "renamed" true (Model.find_component renamed "Middle" <> None);
  let original = Dfd.of_network ~ports:chain_ports chain_net in
  let after = Dfd.of_network ~ports:chain_ports renamed in
  (match Equiv.trace_equivalent ~ticks:10 original after with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "rename must be semantics-preserving");
  checkb "collision rejected" true
    (try ignore (Refactor.rename_component ~old_name:"A" ~new_name:"C" chain_net); false
     with Refactor.Not_applicable _ -> true)

(* ------------------------------------------------------------------ *)
(* Refinement: quantization                                           *)
(* ------------------------------------------------------------------ *)

let test_quantize_expr_fixed () =
  let impl = Impl_type.fixed_for_range ~container:Impl_type.Int16 ~lo:(-100.) ~hi:100. () in
  let q = Refine.quantize_expr impl (Expr.var "x") in
  let eval v =
    let env name = if String.equal name "x" then Value.Present (Value.Float v) else Value.Absent in
    match Expr.step ~tick:0 ~env q (Expr.init_state q) with
    | Value.Present (Value.Float f), _ -> f
    | _ -> Alcotest.fail "expected float"
  in
  let bound =
    match Impl_type.quantization_error_bound impl with
    | Some b -> b
    | None -> Alcotest.fail "bound expected"
  in
  List.iter
    (fun v ->
      let err = Float.abs (eval v -. v) in
      if err > bound +. 1e-9 then
        Alcotest.failf "quantization error %g exceeds bound %g at %g" err bound v)
    [ 0.; 1.; -1.; 33.33; 99.99; -99.99 ];
  (* saturation *)
  checkb "saturates high" true (eval 1000. <= 100.1);
  checkb "saturates low" true (eval (-1000.) >= -100.1)

let test_quantize_expr_int () =
  let q = Refine.quantize_expr (Impl_type.Iint Impl_type.Int8) (Expr.var "x") in
  let eval v =
    let env name = if String.equal name "x" then Value.Present (Value.Float v) else Value.Absent in
    match Expr.step ~tick:0 ~env q (Expr.init_state q) with
    | Value.Present (Value.Float f), _ -> f
    | _ -> Alcotest.fail "expected float"
  in
  checkb "rounds" true (Float.equal (eval 3.4) 3.);
  checkb "saturates" true (Float.equal (eval 300.) 127.)

let test_refine_signal_inserts_quantizer () =
  let impl = Impl_type.Ifixed { container = Impl_type.Int16; scale = 0.01; offset = 0. } in
  let refined = Refine.refine_signal ~channel:"ab" ~impl chain_net in
  checki "one more component" 4 (List.length refined.net_components);
  checki "one more channel" 5 (List.length refined.net_channels);
  let comp = Dfd.of_network ~ports:chain_ports refined in
  Alcotest.(check (list string)) "still well-formed" []
    (Network.errors
       (Dfd.check ~enclosing:comp
          (match comp.comp_behavior with Model.B_dfd n -> n | _ -> assert false)))

let test_quantization_error_bound_property =
  QCheck.Test.make ~name:"fixed-point roundtrip within half step" ~count:300
    QCheck.(pair (float_bound_exclusive 100.) (int_range 1 3))
    (fun (v, container_idx) ->
      let container =
        match container_idx with
        | 1 -> Impl_type.Int8
        | 2 -> Impl_type.Int16
        | _ -> Impl_type.Int32
      in
      let impl = Impl_type.fixed_for_range ~container ~lo:(-100.) ~hi:100. () in
      let enc = Impl_type.encode impl (Value.Float v) in
      let dec = Impl_type.decode impl enc in
      match dec, Impl_type.quantization_error_bound impl with
      | Value.Float f, Some bound -> Float.abs (f -. v) <= bound +. 1e-9
      | _ -> false)

let test_smallest_container () =
  (match Impl_type.smallest_container ~lo:0. ~hi:10. ~resolution:0.1 with
   | Some (Impl_type.Ifixed { container = Impl_type.Int8; _ }) -> ()
   | Some t -> Alcotest.failf "expected int8, got %s" (Impl_type.to_string t)
   | None -> Alcotest.fail "container expected");
  checkb "impossible resolution" true
    (Impl_type.smallest_container ~lo:0. ~hi:1e12 ~resolution:1e-12 = None)

(* ------------------------------------------------------------------ *)
(* Refinement: clustering by clock                                    *)
(* ------------------------------------------------------------------ *)

let multirate_component =
  let c10 = Clock.every 10 Clock.Base and c20 = Clock.every 20 Clock.Base in
  let blk name clock expr ins =
    Model.component name
      ~ports:
        (List.map (fun i -> Model.in_port ~ty:Dtype.Tfloat ~clock i) ins
        @ [ Model.out_port ~ty:Dtype.Tfloat ~clock "out" ])
      ~behavior:(Model.B_exprs [ ("out", expr) ])
  in
  let fast1 = blk "fast1" c10 Expr.(when_ (current (Value.Float 0.) (var "x")) c10) [ "x" ] in
  let fast2 = blk "fast2" c10 Expr.(when_ (current (Value.Float 0.) (var "x") * float 2.) c10) [ "x" ] in
  let slow = blk "slow" c20 Expr.(when_ (current (Value.Float 0.) (var "x")) c20) [ "x" ] in
  let net : Model.network =
    { net_name = "MR";
      net_components = [ fast1; fast2; slow ];
      net_channels =
        [ Dfd.wire "i" ("", "src") ("fast1", "x");
          Dfd.wire "ff" ("fast1", "out") ("fast2", "x");
          Dfd.wire "fs" ("fast2", "out") ("slow", "x");
          Dfd.wire "o" ("slow", "out") ("", "dst") ] }
  in
  Dfd.of_network
    ~ports:
      [ Model.in_port ~ty:Dtype.Tfloat "src";
        Model.out_port ~ty:Dtype.Tfloat ~clock:c20 "dst" ]
    net

let test_cluster_by_clock () =
  let ccd = Refine.cluster_by_clock ~name:"MR" multirate_component in
  checki "two clusters" 2 (List.length ccd.Ccd.clusters);
  let names = List.map (fun (c : Cluster.t) -> c.cluster_name) ccd.Ccd.clusters in
  checkb "rate-10 cluster" true (List.mem "MR_10ms" names);
  checkb "rate-20 cluster" true (List.mem "MR_20ms" names);
  (* the 10ms cluster holds both fast blocks (functional coherency ignored) *)
  (match Ccd.find_cluster ccd "MR_10ms" with
   | Some c -> checki "two members" 2 (List.length c.Cluster.body.net_components)
   | None -> Alcotest.fail "cluster missing");
  (* the cross-rate channel became a CCD channel *)
  checkb "cross channel at top" true
    (List.exists
       (fun (ch : Model.channel) ->
         ch.ch_src.ep_comp = Some "MR_10ms" && ch.ch_dst.ep_comp = Some "MR_20ms")
       ccd.Ccd.channels)

let test_cluster_by_clock_periods () =
  let ccd = Refine.cluster_by_clock ~name:"MR" multirate_component in
  (match Ccd.find_cluster ccd "MR_10ms" with
   | Some c -> Alcotest.(check (option int)) "period" (Some 10) (Cluster.period c)
   | None -> Alcotest.fail "missing");
  match Ccd.find_cluster ccd "MR_20ms" with
  | Some c -> Alcotest.(check (option int)) "period" (Some 20) (Cluster.period c)
  | None -> Alcotest.fail "missing"

(* ------------------------------------------------------------------ *)
(* MTD -> partitionable dataflow                                      *)
(* ------------------------------------------------------------------ *)

let test_mtd_to_dataflow_equiv () =
  let ccd = Mtd_to_dataflow.transform throttle_mtd_comp in
  checki "2 + #modes clusters" 4 (List.length ccd.Ccd.clusters);
  let as_comp = Mtd_to_dataflow.to_component ccd in
  match
    Equiv.equivalent_on_runs ~runs:4 ~ticks:50 ~flows:[ "rate" ]
      throttle_mtd_comp as_comp
  with
  | Ok () -> ()
  | Error (seed, d) ->
    Alcotest.failf "seed %d diverged at %d on %s" seed d.Equiv.d_tick d.Equiv.d_flow

let test_mtd_to_dataflow_is_deployable () =
  let ccd = Mtd_to_dataflow.transform ~period:10 throttle_mtd_comp in
  (* every cluster is a valid smallest deployable unit *)
  List.iter
    (fun (c : Cluster.t) ->
      match Cluster.check c with
      | [] -> ()
      | ps -> Alcotest.failf "cluster %s: %s" c.cluster_name (List.hd ps))
    ccd.Ccd.clusters

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "automode-transform"
    [ ( "equiv",
        [ Alcotest.test_case "identical vs different" `Quick test_equiv_identical;
          Alcotest.test_case "deterministic stimuli" `Quick test_equiv_deterministic_inputs;
          Alcotest.test_case "presence" `Quick test_equiv_presence ] );
      ( "whitebox",
        [ Alcotest.test_case "throttle equivalence" `Quick test_whitebox_throttle_equiv;
          Alcotest.test_case "report" `Quick test_whitebox_report;
          Alcotest.test_case "mtd structure" `Quick test_whitebox_mtd_structure;
          Alcotest.test_case "order semantics" `Quick test_whitebox_order_semantics;
          Alcotest.test_case "accumulator" `Quick test_whitebox_accumulator;
          Alcotest.test_case "cross rate" `Quick test_whitebox_cross_rate;
          Alcotest.test_case "conditional write" `Quick test_whitebox_conditional_write;
          Alcotest.test_case "double writer rejected" `Quick test_whitebox_rejects_double_writer ]
        @ qsuite [ prop_whitebox_random_programs ] );
      ( "blackbox",
        [ Alcotest.test_case "structure" `Quick test_blackbox_structure;
          Alcotest.test_case "generated matrix" `Quick test_blackbox_generated_matrix ] );
      ( "refactor-modeports",
        [ Alcotest.test_case "equivalence" `Quick test_refactor_mode_port_equiv;
          Alcotest.test_case "structure" `Quick test_refactor_mode_port_structure;
          Alcotest.test_case "stateful rejected" `Quick test_refactor_rejects_stateful_modes ] );
      ( "refactor-coordinator",
        [ Alcotest.test_case "resolves conflict" `Quick test_coordinator_resolves_conflict;
          Alcotest.test_case "needs conflict" `Quick test_coordinator_needs_conflict ] );
      ( "refactor-hierarchy",
        [ Alcotest.test_case "grouping" `Quick test_group_components_preserves_traces;
          Alcotest.test_case "renaming" `Quick test_rename_component ] );
      ( "refine-types",
        [ Alcotest.test_case "fixed-point quantize" `Quick test_quantize_expr_fixed;
          Alcotest.test_case "int quantize" `Quick test_quantize_expr_int;
          Alcotest.test_case "quantizer insertion" `Quick test_refine_signal_inserts_quantizer;
          Alcotest.test_case "smallest container" `Quick test_smallest_container ]
        @ qsuite [ test_quantization_error_bound_property ] );
      ( "refine-clustering",
        [ Alcotest.test_case "by clock" `Quick test_cluster_by_clock;
          Alcotest.test_case "periods" `Quick test_cluster_by_clock_periods ] );
      ( "mtd-to-dataflow",
        [ Alcotest.test_case "equivalence" `Quick test_mtd_to_dataflow_equiv;
          Alcotest.test_case "deployable" `Quick test_mtd_to_dataflow_is_deployable ] ) ]
