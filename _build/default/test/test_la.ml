(* Tests for the LA/TA library: implementation types, clusters, CCDs,
   well-definedness conditions, technical architecture, deployment. *)

open Automode_core
open Automode_la

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Impl_type                                                          *)
(* ------------------------------------------------------------------ *)

let test_impl_widths () =
  checki "int16" 16 (Impl_type.bit_width (Impl_type.Iint Impl_type.Int16));
  checki "fixed in int8" 8
    (Impl_type.bit_width
       (Impl_type.Ifixed { container = Impl_type.Int8; scale = 0.5; offset = 0. }));
  checki "float64" 64 (Impl_type.bit_width Impl_type.Ifloat64)

let test_impl_refines () =
  let enum = { Dtype.enum_name = "E"; literals = [ "A"; "B"; "C" ] } in
  checkb "int16 refines int" true
    (Impl_type.refines (Impl_type.Iint Impl_type.Int16) Dtype.Tint);
  checkb "fixed refines float" true
    (Impl_type.refines
       (Impl_type.Ifixed { container = Impl_type.Int16; scale = 0.1; offset = 0. })
       Dtype.Tfloat);
  checkb "enum fits uint8" true
    (Impl_type.refines (Impl_type.Ienum (enum, Impl_type.UInt8)) (Dtype.Tenum enum));
  checkb "bool does not refine int" false
    (Impl_type.refines Impl_type.Ibool Dtype.Tint)

let test_impl_encode_decode () =
  let fx = Impl_type.Ifixed { container = Impl_type.Int16; scale = 0.01; offset = 0. } in
  (match Impl_type.encode fx (Value.Float 1.23) with
   | Value.Int raw -> checki "raw" 123 raw
   | _ -> Alcotest.fail "int expected");
  (match Impl_type.decode fx (Value.Int 123) with
   | Value.Float f -> checkb "decoded" true (Float.abs (f -. 1.23) < 1e-9)
   | _ -> Alcotest.fail "float expected");
  (* saturation *)
  (match Impl_type.encode fx (Value.Float 1e9) with
   | Value.Int raw -> checki "saturated" 32767 raw
   | _ -> Alcotest.fail "int expected");
  let enum = { Dtype.enum_name = "E"; literals = [ "A"; "B" ] } in
  let ie = Impl_type.Ienum (enum, Impl_type.UInt8) in
  (match Impl_type.encode ie (Value.Enum ("E", "B")) with
   | Value.Int 1 -> ()
   | _ -> Alcotest.fail "literal index expected");
  match Impl_type.decode ie (Value.Int 1) with
  | Value.Enum ("E", "B") -> ()
  | _ -> Alcotest.fail "enum roundtrip failed"

let test_impl_physical_range () =
  match
    Impl_type.physical_range
      (Impl_type.Ifixed { container = Impl_type.Int8; scale = 1.; offset = 0. })
  with
  | Some (lo, hi) ->
    checkb "range" true (Float.equal lo (-128.) && Float.equal hi 127.)
  | None -> Alcotest.fail "range expected"

let test_impl_encode_errors () =
  checkb "kind mismatch" true
    (try ignore (Impl_type.encode Impl_type.Ibool (Value.Float 1.)); false
     with Impl_type.Encode_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Cluster                                                            *)
(* ------------------------------------------------------------------ *)

let c10 = Clock.every 10 Clock.Base
let c20 = Clock.every 20 Clock.Base

let simple_body out_expr : Model.network =
  { net_name = "body";
    net_components =
      [ Dfd.block_of_expr ~name:"F" ~inputs:[ ("x", Some Dtype.Tfloat) ]
          ~out_type:Dtype.Tfloat out_expr ];
    net_channels =
      [ Dfd.wire "i" ("", "u") ("F", "x");
        Dfd.wire "o" ("F", "out") ("", "y") ] }

let mk_cluster ?(name = "C") ?(in_clock = c10) ?(out_clock = c10) () =
  Cluster.make ~name
    ~ports:
      [ Model.in_port ~ty:Dtype.Tfloat ~clock:in_clock "u";
        Model.out_port ~ty:Dtype.Tfloat ~clock:out_clock "y" ]
    ~body:(simple_body Expr.(var "x" * float 2.))
    ()

let test_cluster_check_ok () =
  Alcotest.(check (list string)) "clean" [] (Cluster.check (mk_cluster ()))

let test_cluster_check_untyped () =
  let c =
    Cluster.make ~name:"C"
      ~ports:[ Model.in_port "u" ]
      ~body:(simple_body (Expr.var "x"))
      ()
  in
  checkb "untyped flagged" true (Cluster.check c <> [])

let test_cluster_check_aperiodic () =
  let c = mk_cluster ~in_clock:(Clock.event "crash") () in
  checkb "aperiodic flagged" true (Cluster.check c <> [])

let test_cluster_period () =
  Alcotest.(check (option int)) "gcd of rates" (Some 10)
    (Cluster.period (mk_cluster ~in_clock:c10 ~out_clock:c20 ()))

let test_cluster_wcet_monotone () =
  let small = mk_cluster () in
  let big =
    Cluster.make ~name:"Big"
      ~ports:
        [ Model.in_port ~ty:Dtype.Tfloat ~clock:c10 "u";
          Model.out_port ~ty:Dtype.Tfloat ~clock:c10 "y" ]
      ~body:
        (simple_body
           Expr.(
             Call ("limit", [ (var "x" * float 2.) + float 1.; float 0.; float 10. ])))
      ()
  in
  checkb "more expression nodes cost more" true
    (Cluster.wcet_estimate big > Cluster.wcet_estimate small)

let test_cluster_impl_types () =
  let impl = Impl_type.Ifixed { container = Impl_type.Int16; scale = 0.1; offset = 0. } in
  let c =
    Cluster.make ~name:"C"
      ~impl_types:[ ("u", impl) ]
      ~ports:
        [ Model.in_port ~ty:Dtype.Tfloat ~clock:c10 "u";
          Model.out_port ~ty:Dtype.Tfloat ~clock:c10 "y" ]
      ~body:(simple_body (Expr.var "x"))
      ()
  in
  Alcotest.(check (list string)) "refining impl ok" [] (Cluster.check c);
  let bad = { c with Cluster.impl_types = [ ("u", Impl_type.Ibool) ] } in
  checkb "non-refining impl flagged" true (Cluster.check bad <> [])

(* ------------------------------------------------------------------ *)
(* CCD and well-definedness                                           *)
(* ------------------------------------------------------------------ *)

(* A fast (10ms) and a slow (100ms) cluster exchanging both ways. *)
let engine_ccd ~delayed_slow_to_fast =
  let fast =
    Cluster.make ~name:"fast"
      ~ports:
        [ Model.in_port ~ty:Dtype.Tfloat ~clock:c10 "from_slow";
          Model.out_port ~ty:Dtype.Tfloat ~clock:c10 "speed" ]
      ~body:
        { net_name = "fast_body";
          net_components =
            [ Dfd.block_of_expr ~name:"F"
                ~inputs:[ ("x", Some Dtype.Tfloat) ]
                ~out_type:Dtype.Tfloat
                Expr.(when_ (current (Value.Float 0.) (var "x") + float 1.) c10) ];
          net_channels =
            [ Dfd.wire "i" ("", "from_slow") ("F", "x");
              Dfd.wire "o" ("F", "out") ("", "speed") ] }
      ()
  in
  let c100 = Clock.every 100 Clock.Base in
  let slow =
    Cluster.make ~name:"slow"
      ~ports:
        [ Model.in_port ~ty:Dtype.Tfloat ~clock:c100 "speed_in";
          Model.out_port ~ty:Dtype.Tfloat ~clock:c100 "setpoint" ]
      ~body:
        { net_name = "slow_body";
          net_components =
            [ Dfd.block_of_expr ~name:"S"
                ~inputs:[ ("x", Some Dtype.Tfloat) ]
                ~out_type:Dtype.Tfloat
                Expr.(when_ (current (Value.Float 0.) (var "x") * float 0.5) c100) ];
          net_channels =
            [ Dfd.wire "i" ("", "speed_in") ("S", "x");
              Dfd.wire "o" ("S", "out") ("", "setpoint") ] }
      ()
  in
  Ccd.make ~name:"EngineCcd" ~clusters:[ fast; slow ]
    ~channels:
      [ Model.channel ~name:"fast_to_slow" (Model.at "fast" "speed")
          (Model.at "slow" "speed_in");
        Model.channel ~delayed:delayed_slow_to_fast
          ?init:(if delayed_slow_to_fast then Some (Value.Float 0.) else None)
          ~name:"slow_to_fast" (Model.at "slow" "setpoint")
          (Model.at "fast" "from_slow") ]
    ()

let test_ccd_check () =
  let ccd = engine_ccd ~delayed_slow_to_fast:true in
  Alcotest.(check (list string)) "well-formed" [] (Ccd.check ccd)

let test_ccd_undelayed_loop_detected () =
  let ccd = engine_ccd ~delayed_slow_to_fast:false in
  checkb "instantaneous cluster loop" true
    (List.exists
       (fun msg ->
         String.length msg >= 13 && String.sub msg 0 13 = "instantaneous")
       (Ccd.check ccd))

let test_ccd_channel_rates () =
  let ccd = engine_ccd ~delayed_slow_to_fast:true in
  let rates = Ccd.channel_rates ccd in
  checki "two channels" 2 (List.length rates);
  List.iter
    (fun ((ch : Model.channel), src, dst) ->
      match ch.ch_name with
      | "fast_to_slow" ->
        checkb "10 -> 100" true (src = Some 10 && dst = Some 100)
      | "slow_to_fast" ->
        checkb "100 -> 10" true (src = Some 100 && dst = Some 10)
      | _ -> Alcotest.fail "unexpected channel")
    rates

let test_well_defined_osek () =
  let target = Well_defined.osek_fixed_priority in
  (* undelayed slow->fast violates; fast->slow does not *)
  let bad = engine_ccd ~delayed_slow_to_fast:false in
  (match Well_defined.check ~target bad with
   | [ v ] ->
     Alcotest.(check string) "offending channel" "slow_to_fast"
       v.Well_defined.v_channel.Model.ch_name
   | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  let good = engine_ccd ~delayed_slow_to_fast:true in
  checki "no violations" 0 (List.length (Well_defined.check ~target good))

let test_well_defined_repair () =
  let bad = engine_ccd ~delayed_slow_to_fast:false in
  let repaired, n =
    Well_defined.repair ~target:Well_defined.osek_fixed_priority bad
  in
  checki "one channel repaired" 1 n;
  checki "now clean" 0
    (List.length
       (Well_defined.check ~target:Well_defined.osek_fixed_priority repaired));
  (* repair inserted an initial value from the destination type *)
  checkb "init value present" true
    (List.exists
       (fun (ch : Model.channel) ->
         ch.ch_name = "slow_to_fast" && ch.ch_init <> None && ch.ch_delayed)
       repaired.Ccd.channels)

let test_well_defined_time_triggered_stricter () =
  let ccd = engine_ccd ~delayed_slow_to_fast:true in
  (* TDMA target also requires a delay on the (undelayed) fast->slow link *)
  checki "tdma flags fast->slow" 1
    (List.length (Well_defined.check ~target:Well_defined.time_triggered ccd))

(* ------------------------------------------------------------------ *)
(* TA and deployment                                                  *)
(* ------------------------------------------------------------------ *)

let engine_ta =
  Ta.make ~name:"TwoEcu"
    ~ecus:
      [ { Ta.ecu_name = "ecu1"; speed_factor = 1.0 };
        { Ta.ecu_name = "ecu2"; speed_factor = 2.0 } ]
    ~tasks:
      [ { Ta.task_name = "t_fast"; task_ecu = "ecu1"; period_us = 10_000;
          priority = 0; offset_us = 0 };
        { Ta.task_name = "t_slow"; task_ecu = "ecu2"; period_us = 100_000;
          priority = 0; offset_us = 0 } ]
    ~buses:[ { Ta.bus_name = "can0"; bitrate = 500_000 } ]
    ~frames:
      [ { Ta.slot_name = "fr1"; slot_bus = "can0"; can_id = 0x10;
          capacity_bits = 64; slot_period_us = 10_000 };
        { Ta.slot_name = "fr2"; slot_bus = "can0"; can_id = 0x20;
          capacity_bits = 64; slot_period_us = 100_000 } ]
    ()

let test_ta_check () =
  Alcotest.(check (list string)) "clean" [] (Ta.check engine_ta);
  let dup_prio =
    { engine_ta with
      Ta.tasks =
        [ { Ta.task_name = "a"; task_ecu = "ecu1"; period_us = 10; priority = 0; offset_us = 0 };
          { Ta.task_name = "b"; task_ecu = "ecu1"; period_us = 10; priority = 0; offset_us = 0 } ] }
  in
  checkb "duplicate priorities" true (Ta.check dup_prio <> []);
  let bad_frame =
    { engine_ta with
      Ta.frames =
        [ { Ta.slot_name = "f"; slot_bus = "nope"; can_id = 1; capacity_bits = 64;
            slot_period_us = 100 } ] }
  in
  checkb "unknown bus" true (Ta.check bad_frame <> [])

let good_deployment () =
  let ccd = engine_ccd ~delayed_slow_to_fast:true in
  Deploy.make ~ccd ~ta:engine_ta
    ~cluster_task:[ ("fast", "t_fast"); ("slow", "t_slow") ]
    ~signal_frame:[ ("fast_to_slow", "fr1"); ("slow_to_fast", "fr2") ]
    ()

let test_deploy_check_ok () =
  Alcotest.(check (list string)) "clean" [] (Deploy.check (good_deployment ()))

let test_deploy_unmapped_cluster () =
  let d = good_deployment () in
  let d = { d with Deploy.cluster_task = [ ("fast", "t_fast") ] } in
  checkb "unmapped flagged" true
    (List.exists
       (fun m -> String.length m > 7 && String.sub m 0 7 = "cluster")
       (Deploy.check d))

let test_deploy_rate_mismatch () =
  let d = good_deployment () in
  (* map the fast cluster onto the slow task: activation too slow *)
  let d = { d with Deploy.cluster_task = [ ("fast", "t_slow"); ("slow", "t_slow") ] } in
  checkb "rate mismatch flagged" true (Deploy.check d <> [])

let test_deploy_unmapped_signal () =
  let d = good_deployment () in
  let d = { d with Deploy.signal_frame = [] } in
  checkb "inter-ECU signal unmapped" true
    (List.exists
       (fun m ->
         String.length m > 16 && String.sub m 0 16 = "inter-ECU signal")
       (Deploy.check d))

let test_deploy_ecu_of_cluster () =
  let d = good_deployment () in
  Alcotest.(check (option string)) "fast on ecu1" (Some "ecu1")
    (Deploy.ecu_of_cluster d "fast");
  Alcotest.(check (option string)) "slow on ecu2" (Some "ecu2")
    (Deploy.ecu_of_cluster d "slow");
  checki "both channels inter-ECU" 2 (List.length (Deploy.inter_ecu_channels d))

let test_deploy_task_sets () =
  let d = good_deployment () in
  let sets = Deploy.task_sets d in
  checki "two ecus" 2 (List.length sets);
  let ecu1 = List.assoc "ecu1" sets in
  (match ecu1 with
   | [ t ] ->
     Alcotest.(check string) "task" "t_fast" t.Automode_osek.Osek_task.task_name;
     checkb "wcet positive" true (t.Automode_osek.Osek_task.wcet > 0)
   | _ -> Alcotest.fail "one task on ecu1");
  (* the resulting task sets are schedulable on this TA *)
  List.iter
    (fun (_, ts) ->
      if ts <> [] then
        checkb "schedulable" true
          (Automode_osek.Scheduler.simulate ~horizon:1_000_000 ts)
            .Automode_osek.Scheduler.schedulable)
    sets

let test_deploy_bus_frames_and_matrix () =
  let d = good_deployment () in
  let frames = List.assoc "can0" (Deploy.bus_frames d) in
  checki "two frames used" 2 (List.length frames);
  let cm = Deploy.comm_matrix d in
  checki "two entries" 2 (List.length cm.Automode_osek.Comm_matrix.entries);
  Alcotest.(check (list string)) "matrix clean" []
    (Automode_osek.Comm_matrix.check cm);
  (* the CAN traffic derived from the deployment is schedulable *)
  let r =
    Automode_osek.Can_bus.simulate { Automode_osek.Can_bus.bitrate = 500_000 }
      ~horizon:1_000_000 frames
  in
  checkb "bus not overloaded" true (r.Automode_osek.Can_bus.load < 0.5)

let test_deploy_auto_map () =
  let d = good_deployment () in
  let d = { d with Deploy.signal_frame = [] } in
  let d = Deploy.auto_map_signals d in
  Alcotest.(check (list string)) "auto-mapped deployment clean" []
    (Deploy.check d);
  checki "two mappings found" 2 (List.length d.Deploy.signal_frame)

let test_deploy_auto_assign () =
  let ccd = engine_ccd ~delayed_slow_to_fast:true in
  let assignment = Deploy.auto_assign ~ccd ~ta:engine_ta in
  (* both clusters get hosted, each at an adequate rate *)
  Alcotest.(check (option string)) "fast on fast task" (Some "t_fast")
    (List.assoc_opt "fast" assignment);
  Alcotest.(check (option string)) "slow hosted" (Some "t_slow")
    (List.assoc_opt "slow" assignment);
  (* the resulting deployment is complete and clean after signal mapping *)
  let d =
    Deploy.auto_map_signals
      (Deploy.make ~ccd ~ta:engine_ta ~cluster_task:assignment ())
  in
  Alcotest.(check (list string)) "auto deployment clean" [] (Deploy.check d)

let test_deploy_auto_assign_balances () =
  (* two identical ECUs, two identical tasks: two equal clusters must not
     land on the same ECU *)
  let mk_cluster name =
    Cluster.make ~name
      ~ports:
        [ Model.in_port ~ty:Dtype.Tfloat ~clock:c10 "u";
          Model.out_port ~ty:Dtype.Tfloat ~clock:c10 "y" ]
      ~body:(simple_body Expr.(var "x" * float 2.))
      ()
  in
  let ccd =
    Ccd.make ~name:"Pair" ~clusters:[ mk_cluster "c1"; mk_cluster "c2" ]
      ~channels:[] ()
  in
  let ta =
    Ta.make ~name:"Sym"
      ~ecus:
        [ { Ta.ecu_name = "e1"; speed_factor = 1.0 };
          { Ta.ecu_name = "e2"; speed_factor = 1.0 } ]
      ~tasks:
        [ { Ta.task_name = "t1"; task_ecu = "e1"; period_us = 10_000;
            priority = 0; offset_us = 0 };
          { Ta.task_name = "t2"; task_ecu = "e2"; period_us = 10_000;
            priority = 0; offset_us = 0 } ]
      ()
  in
  match Deploy.auto_assign ~ccd ~ta with
  | [ (_, ta1); (_, tb1) ] -> checkb "spread over ECUs" true (ta1 <> tb1)
  | other -> Alcotest.failf "expected 2 assignments, got %d" (List.length other)

let test_deploy_auto_assign_rejects_impossible () =
  (* a 10 ms cluster with only a 100 ms task available: not hosted *)
  let ccd = engine_ccd ~delayed_slow_to_fast:true in
  let ta =
    { engine_ta with
      Ta.tasks =
        [ { Ta.task_name = "t_slow"; task_ecu = "ecu2"; period_us = 100_000;
            priority = 0; offset_us = 0 } ] }
  in
  let assignment = Deploy.auto_assign ~ccd ~ta in
  checkb "fast cluster not hosted" true
    (List.assoc_opt "fast" assignment = None);
  checkb "slow cluster hosted" true
    (List.assoc_opt "slow" assignment <> None)

let test_deploy_frame_overload () =
  let d = good_deployment () in
  (* cram both signals into one 64-bit frame: 32+32 fits, so tighten *)
  let ta =
    { engine_ta with
      Ta.frames =
        [ { Ta.slot_name = "fr1"; slot_bus = "can0"; can_id = 0x10;
            capacity_bits = 40; slot_period_us = 10_000 } ] }
  in
  let d =
    { d with
      Deploy.ta;
      signal_frame = [ ("fast_to_slow", "fr1"); ("slow_to_fast", "fr1") ] }
  in
  checkb "overload detected" true
    (List.exists
       (fun m -> String.length m > 5 && String.sub m 0 5 = "frame")
       (Deploy.check d))

let () =
  Alcotest.run "automode-la"
    [ ( "impl-type",
        [ Alcotest.test_case "widths" `Quick test_impl_widths;
          Alcotest.test_case "refines" `Quick test_impl_refines;
          Alcotest.test_case "encode/decode" `Quick test_impl_encode_decode;
          Alcotest.test_case "physical range" `Quick test_impl_physical_range;
          Alcotest.test_case "encode errors" `Quick test_impl_encode_errors ] );
      ( "cluster",
        [ Alcotest.test_case "check ok" `Quick test_cluster_check_ok;
          Alcotest.test_case "untyped" `Quick test_cluster_check_untyped;
          Alcotest.test_case "aperiodic" `Quick test_cluster_check_aperiodic;
          Alcotest.test_case "period" `Quick test_cluster_period;
          Alcotest.test_case "wcet monotone" `Quick test_cluster_wcet_monotone;
          Alcotest.test_case "impl types" `Quick test_cluster_impl_types ] );
      ( "ccd",
        [ Alcotest.test_case "check" `Quick test_ccd_check;
          Alcotest.test_case "undelayed loop" `Quick test_ccd_undelayed_loop_detected;
          Alcotest.test_case "channel rates" `Quick test_ccd_channel_rates ] );
      ( "well-defined",
        [ Alcotest.test_case "osek slow->fast" `Quick test_well_defined_osek;
          Alcotest.test_case "repair" `Quick test_well_defined_repair;
          Alcotest.test_case "tdma stricter" `Quick test_well_defined_time_triggered_stricter ] );
      ( "ta",
        [ Alcotest.test_case "check" `Quick test_ta_check ] );
      ( "deploy",
        [ Alcotest.test_case "check ok" `Quick test_deploy_check_ok;
          Alcotest.test_case "unmapped cluster" `Quick test_deploy_unmapped_cluster;
          Alcotest.test_case "rate mismatch" `Quick test_deploy_rate_mismatch;
          Alcotest.test_case "unmapped signal" `Quick test_deploy_unmapped_signal;
          Alcotest.test_case "ecu lookup" `Quick test_deploy_ecu_of_cluster;
          Alcotest.test_case "task sets" `Quick test_deploy_task_sets;
          Alcotest.test_case "bus frames + matrix" `Quick test_deploy_bus_frames_and_matrix;
          Alcotest.test_case "auto map" `Quick test_deploy_auto_map;
          Alcotest.test_case "auto assign" `Quick test_deploy_auto_assign;
          Alcotest.test_case "auto assign balances" `Quick test_deploy_auto_assign_balances;
          Alcotest.test_case "auto assign impossible" `Quick test_deploy_auto_assign_rejects_impossible;
          Alcotest.test_case "frame overload" `Quick test_deploy_frame_overload ] ) ]
