(* Tests for the whole-model static analysis (type and clock consistency
   across the meta-model). *)

open Automode_core

let checkb = Alcotest.(check bool)

let has_error issues fragment =
  List.exists
    (fun (i : Static_check.issue) ->
      i.severity = `Error
      && (let len = String.length fragment in
          let rec contains k =
            k + len <= String.length i.msg
            && (String.equal (String.sub i.msg k len) fragment || contains (k + 1))
          in
          contains 0))
    issues

(* ------------------------------------------------------------------ *)
(* Clean models stay clean                                            *)
(* ------------------------------------------------------------------ *)

let assert_clean name comp =
  let issues = Static_check.component comp in
  Alcotest.(check (list string)) (name ^ " has no static errors") []
    (Static_check.errors issues)

let test_casestudy_models_clean () =
  assert_clean "door lock" Automode_casestudy.Door_lock.component;
  assert_clean "sampling" (Automode_casestudy.Sampling.component ~factor:2);
  assert_clean "engine modes" Automode_casestudy.Engine_modes.component;
  assert_clean "throttle" Automode_casestudy.Throttle.component;
  assert_clean "engine ccd" Automode_casestudy.Engine_ccd.component

let test_reengineered_clean () =
  let model, _ = Automode_casestudy.Engine_ascet.reengineer () in
  Alcotest.(check (list string)) "reengineered model statically clean" []
    (Static_check.errors (Static_check.model model))

(* ------------------------------------------------------------------ *)
(* Defect detection                                                   *)
(* ------------------------------------------------------------------ *)

let test_type_mismatch_detected () =
  (* output declared bool but computes float *)
  let comp =
    Model.component "Bad"
      ~ports:
        [ Model.in_port ~ty:Dtype.Tfloat "x";
          Model.out_port ~ty:Dtype.Tbool "y" ]
      ~behavior:(Model.B_exprs [ ("y", Expr.(var "x" * float 2.)) ])
  in
  checkb "mismatch found" true
    (has_error (Static_check.component comp) "declared")

let test_illtyped_expr_detected () =
  let comp =
    Model.component "Bad"
      ~ports:
        [ Model.in_port ~ty:Dtype.Tbool "b";
          Model.out_port ~ty:Dtype.Tfloat "y" ]
      ~behavior:(Model.B_exprs [ ("y", Expr.(var "b" + float 1.)) ])
  in
  checkb "type error found" true
    (Static_check.errors (Static_check.component comp) <> [])

let test_dynamic_ports_skipped () =
  (* untyped input: type checking is skipped (dynamic DFD typing) *)
  let comp =
    Model.component "Dyn"
      ~ports:[ Model.in_port "x"; Model.out_port ~ty:Dtype.Tbool "y" ]
      ~behavior:(Model.B_exprs [ ("y", Expr.(var "x" + float 1.)) ])
  in
  Alcotest.(check (list string)) "no errors for dynamic ports" []
    (Static_check.errors (Static_check.component comp))

let test_undeclared_output_detected () =
  let comp =
    Model.component "Bad"
      ~ports:[ Model.in_port ~ty:Dtype.Tfloat "x" ]
      ~behavior:(Model.B_exprs [ ("ghost", Expr.var "x") ])
  in
  checkb "undeclared output" true
    (has_error (Static_check.component comp) "undeclared output")

let test_clock_mismatch_warns () =
  let c2 = Clock.every 2 Clock.Base in
  let comp =
    Model.component "Rate"
      ~ports:
        [ Model.in_port ~ty:Dtype.Tfloat "x";
          (* declared base clock, computed on every(2) *)
          Model.out_port ~ty:Dtype.Tfloat "y" ]
      ~behavior:(Model.B_exprs [ ("y", Expr.when_ (Expr.var "x") c2) ])
  in
  let issues = Static_check.component comp in
  checkb "no errors" true (Static_check.errors issues = []);
  checkb "clock warning" true
    (List.exists
       (fun (i : Static_check.issue) ->
         i.severity = `Warning
         && String.length i.msg > 5
         && String.sub i.msg 0 5 = "clock")
       issues)

let test_bad_guard_detected () =
  let mtd : Model.mtd =
    { mtd_name = "M";
      mtd_modes =
        [ { mode_name = "A"; mode_behavior = Model.B_unspecified };
          { mode_name = "B"; mode_behavior = Model.B_unspecified } ];
      mtd_initial = "A";
      mtd_transitions =
        [ { mt_src = "A"; mt_dst = "B"; mt_guard = Expr.(var "x" + float 1.);
            mt_priority = 0 } ] }
  in
  let comp =
    Model.component "M"
      ~ports:[ Model.in_port ~ty:Dtype.Tfloat "x" ]
      ~behavior:(Model.B_mtd mtd)
  in
  checkb "non-bool guard" true
    (has_error (Static_check.component comp) "not bool")

let test_std_update_type_checked () =
  let std : Model.std =
    { std_name = "S"; std_states = [ "s" ]; std_initial = "s";
      std_vars = [ ("count", Value.Int 0) ];
      std_transitions =
        [ { st_src = "s"; st_dst = "s"; st_guard = Expr.bool true;
            st_outputs = [];
            (* float assigned to an int variable *)
            st_updates = [ ("count", Expr.float 1.5) ];
            st_priority = 0 } ] }
  in
  let comp =
    Model.component "S" ~ports:[ Model.in_port ~ty:Dtype.Tfloat "x" ]
      ~behavior:(Model.B_std std)
  in
  checkb "update mismatch" true
    (has_error (Static_check.component comp) "declared")

let test_nested_issue_paths () =
  let bad =
    Model.component "Inner"
      ~ports:
        [ Model.in_port ~ty:Dtype.Tbool "b";
          Model.out_port ~ty:Dtype.Tfloat "y" ]
      ~behavior:(Model.B_exprs [ ("y", Expr.(var "b" + float 1.)) ])
  in
  let net : Model.network =
    { net_name = "Net"; net_components = [ bad ]; net_channels = [] }
  in
  let outer = Dfd.of_network ~ports:[] net in
  let issues = Static_check.component outer in
  checkb "issue carries nested path" true
    (List.exists
       (fun (i : Static_check.issue) -> String.equal i.at "Net.Inner")
       issues)

let test_summary () =
  let comp =
    Model.component "Bad"
      ~ports:
        [ Model.in_port ~ty:Dtype.Tbool "b";
          Model.out_port ~ty:Dtype.Tfloat "y" ]
      ~behavior:(Model.B_exprs [ ("y", Expr.(var "b" + float 1.)) ])
  in
  let s = Static_check.summary (Static_check.component comp) in
  checkb "mentions errors" true (String.length s > 0 && s.[0] = '1')

let () =
  Alcotest.run "automode-static-check"
    [ ( "clean-models",
        [ Alcotest.test_case "case studies" `Quick test_casestudy_models_clean;
          Alcotest.test_case "reengineered" `Quick test_reengineered_clean ] );
      ( "defects",
        [ Alcotest.test_case "type mismatch" `Quick test_type_mismatch_detected;
          Alcotest.test_case "ill-typed expr" `Quick test_illtyped_expr_detected;
          Alcotest.test_case "dynamic skipped" `Quick test_dynamic_ports_skipped;
          Alcotest.test_case "undeclared output" `Quick test_undeclared_output_detected;
          Alcotest.test_case "clock mismatch warns" `Quick test_clock_mismatch_warns;
          Alcotest.test_case "bad guard" `Quick test_bad_guard_detected;
          Alcotest.test_case "std update" `Quick test_std_update_type_checked;
          Alcotest.test_case "nested paths" `Quick test_nested_issue_paths;
          Alcotest.test_case "summary" `Quick test_summary ] ) ]
