(* automode - command-line front-end of the AutoMoDe tool prototype.

   Sub-commands mirror the methodology's activities: simulate and render
   models, run FAA rules and causality checks, reengineer ASCET sources,
   evaluate deployments, and generate per-ECU projects. *)

open Cmdliner
open Automode_core
open Automode_casestudy

(* ------------------------------------------------------------------ *)
(* Bundled models                                                     *)
(* ------------------------------------------------------------------ *)

let bundled : (string * Model.component) list =
  [ ("door-lock", Door_lock.component);
    ("sampling", Sampling.component ~factor:2);
    ("momentum", Momentum.component);
    ("engine-modes", Engine_modes.component);
    ("engine-ccd", Engine_ccd.component);
    ("throttle", Throttle.component) ]

let bundled_traces : (string * (int -> Trace.t)) list =
  [ ("door-lock", fun ticks -> Door_lock.demo_trace ~ticks ());
    ("sampling", fun ticks -> Sampling.demo_trace ~ticks ());
    ("momentum", fun ticks -> Momentum.step_response ~ticks ~target:20. ());
    ("engine-modes", fun ticks -> Engine_modes.demo_trace ~ticks ());
    ("engine-ccd", fun ticks -> Engine_ccd.demo_trace ~ticks ());
    ("throttle", fun ticks -> Throttle.demo_trace ~ticks ()) ]

let model_names = List.map fst bundled

(* A MODEL argument is either a bundled name or a path to a .amod file in
   the textual AutoMoDe format. *)
let find_model name =
  if Filename.check_suffix name ".amod" then
    try Ok (Automode_syntax.Model_parser.parse_file name).Model.model_root with
    | Automode_syntax.Model_parser.Parse_error (msg, line) ->
      Error (Printf.sprintf "%s:%d: %s" name line msg)
    | Automode_syntax.Syntax_lexer.Lex_error (msg, line) ->
      Error (Printf.sprintf "%s:%d: %s" name line msg)
    | Sys_error msg -> Error msg
  else
    match List.assoc_opt name bundled with
    | Some c -> Ok c
    | None ->
      Error
        (Printf.sprintf "unknown model %s (available: %s, or a .amod file)"
           name
           (String.concat ", " model_names))

let model_arg =
  let doc =
    "Bundled model (" ^ String.concat ", " model_names
    ^ ") or a .amod file in the textual AutoMoDe format."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let ticks_arg default =
  let doc = "Number of base-clock ticks to simulate." in
  Arg.(value & opt int default & info [ "ticks"; "t" ] ~doc)

let or_fail = function
  | Ok x -> x
  | Error msg -> prerr_endline ("error: " ^ msg); exit 1

(* ------------------------------------------------------------------ *)
(* Commands                                                           *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let run name ticks csv =
    let comp = or_fail (find_model name) in
    let trace =
      match List.assoc_opt name bundled_traces with
      | Some mk -> mk ticks
      | None ->
        (* loaded models run on the empty stimulus *)
        Sim.run ~ticks ~inputs:Sim.no_inputs comp
    in
    print_string (if csv then Trace.to_csv trace else Trace.to_string trace)
  in
  let csv_flag =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the trace as CSV.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Simulate a model (bundled models use their demo stimulus, loaded \
          models the empty stimulus)")
    Term.(const run $ model_arg $ ticks_arg 20 $ csv_flag)

let render_cmd =
  let run name =
    let comp = or_fail (find_model name) in
    print_string (Render.component_to_string comp)
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Render a bundled model's diagrams as text")
    Term.(const run $ model_arg)

let causality_cmd =
  let run name =
    let comp = or_fail (find_model name) in
    match Causality.check_recursive comp with
    | [] -> print_endline "causality: no instantaneous loops"
    | loops ->
      List.iter
        (fun (path, loop) ->
          Printf.printf "instantaneous loop in %s: %s\n"
            (String.concat "." path)
            (String.concat " -> " loop))
        loops;
      exit 1
  in
  Cmd.v
    (Cmd.info "causality" ~doc:"Run the causality check on a bundled model")
    Term.(const run $ model_arg)

let rules_cmd =
  let run name =
    let comp = or_fail (find_model name) in
    let model =
      { Model.model_name = name; model_level = Model.Faa; model_root = comp;
        model_enums = [] }
    in
    let findings = Faa_rules.run model in
    print_endline (Faa_rules.summary findings);
    List.iter (fun f -> Format.printf "%a@." Faa_rules.pp_finding f) findings
  in
  Cmd.v
    (Cmd.info "rules" ~doc:"Run the FAA rules on a bundled model")
    Term.(const run $ model_arg)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ascet"
         ~doc:"ASCET-format source file.")

let check_cmd =
  let run path =
    try
      let m = Automode_ascet.Ascet_parser.parse_file path in
      match Automode_ascet.Ascet_ast.check m with
      | [] -> Printf.printf "%s: ok\n" path
      | problems -> List.iter print_endline problems; exit 1
    with
    | Automode_ascet.Ascet_parser.Parse_error (msg, line) ->
      Printf.eprintf "%s:%d: %s\n" path line msg; exit 1
    | Automode_ascet.Ascet_lexer.Lex_error (msg, line) ->
      Printf.eprintf "%s:%d: %s\n" path line msg; exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and check an ASCET source file")
    Term.(const run $ file_arg)

let reengineer_cmd =
  let run path render =
    try
      let m = Automode_ascet.Ascet_parser.parse_file path in
      let model, report = Automode_transform.Reengineer.whitebox m in
      Format.printf "%a@." Automode_transform.Reengineer.pp_report report;
      if render then
        print_string (Render.component_to_string model.Model.model_root)
    with
    | Automode_ascet.Ascet_parser.Parse_error (msg, line) ->
      Printf.eprintf "%s:%d: %s\n" path line msg; exit 1
    | Automode_transform.Reengineer.Unsupported msg ->
      Printf.eprintf "unsupported model: %s\n" msg; exit 1
  in
  let render_flag =
    Arg.(value & flag & info [ "render" ] ~doc:"Render the resulting FDA model.")
  in
  Cmd.v
    (Cmd.info "reengineer"
       ~doc:"White-box reengineer an ASCET source file into an FDA model")
    Term.(const run $ file_arg $ render_flag)

let deploy_cmd =
  let run () =
    let d = Engine_ccd.deployment in
    Format.printf "%a@." Automode_la.Deploy.pp d;
    (match Automode_la.Deploy.check d with
     | [] -> print_endline "deployment checks: ok"
     | ps -> List.iter print_endline ps);
    List.iter
      (fun (ecu, tasks) ->
        if tasks <> [] then begin
          Printf.printf "\nECU %s:\n" ecu;
          Format.printf "%a"
            Automode_osek.Scheduler.pp_result
            (Automode_osek.Scheduler.simulate ~horizon:1_000_000 tasks)
        end)
      (Automode_la.Deploy.task_sets d)
  in
  Cmd.v
    (Cmd.info "deploy"
       ~doc:"Evaluate the bundled engine-controller deployment")
    Term.(const run $ const ())

let codegen_cmd =
  let run dir redundant =
    let projects =
      if redundant then Replicated.projects ()
      else Automode_codegen.Ascet_project.generate Engine_ccd.deployment
    in
    match dir with
    | Some dir ->
      let paths = Automode_codegen.Ascet_project.write_to_dir ~dir projects in
      List.iter (fun p -> print_endline ("wrote " ^ p)) paths
    | None ->
      List.iter
        (fun (p : Automode_codegen.Ascet_project.project) ->
          Printf.printf "=== %s ===\n%s\n" p.project_ecu p.project_text)
        projects
  in
  let dir_arg =
    Arg.(value & opt (some string) None
         & info [ "output"; "o" ] ~docv:"DIR"
             ~doc:"Write projects into $(docv) instead of stdout.")
  in
  let redundant_flag =
    Arg.(value & flag
         & info [ "redundant" ]
             ~doc:"Generate for the replicated engine deployment instead \
                   (four ECUs, pair voter and heartbeat supervision \
                   components included).")
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Generate per-ECU ASCET projects for the engine deployment")
    Term.(const run $ dir_arg $ redundant_flag)

let check_model_cmd =
  let run name =
    let comp = or_fail (find_model name) in
    let issues = Static_check.component comp in
    print_endline (Static_check.summary issues);
    List.iter (fun i -> Format.printf "%a@." Static_check.pp_issue i) issues;
    if Static_check.errors issues <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "check-model"
       ~doc:"Whole-model static analysis: types, clocks, causality, machines")
    Term.(const run $ model_arg)

let save_cmd =
  let run name path =
    let comp = or_fail (find_model name) in
    let model : Model.model =
      { Model.model_name = comp.Model.comp_name; model_level = Model.Fda;
        model_root = comp; model_enums = [] }
    in
    let oc = open_out path in
    output_string oc (Automode_syntax.Model_printer.to_string model);
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  let path_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE.amod"
           ~doc:"Destination file.")
  in
  Cmd.v
    (Cmd.info "save"
       ~doc:"Serialize a model into the textual AutoMoDe format")
    Term.(const run $ model_arg $ path_arg)

let timeline_cmd =
  let run horizon =
    List.iter
      (fun (ecu, tasks) ->
        if tasks <> [] then begin
          Printf.printf "ECU %s:\n" ecu;
          Format.printf "%a@."
            (Automode_osek.Scheduler.pp_timeline ~width:64)
            (Automode_osek.Scheduler.timeline ~horizon tasks)
        end)
      (Automode_la.Deploy.task_sets Engine_ccd.deployment)
  in
  let horizon_arg =
    Arg.(value & opt int 200_000
         & info [ "horizon" ] ~docv:"US" ~doc:"Timeline horizon in us.")
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Gantt timeline of the engine deployment's task schedules")
    Term.(const run $ horizon_arg)

(* Shared arguments of the campaign commands (robustness/guard/redund). *)

let seed_list_arg =
  Arg.(value & opt_all int []
       & info [ "seed"; "s" ] ~docv:"SEED"
           ~doc:"Seed to run (repeatable); default: 1..$(b,--seeds).")

let seed_count_arg =
  Arg.(value & opt int 10
       & info [ "seeds"; "count"; "n" ] ~docv:"N"
           ~doc:"Number of seeds when no explicit $(b,--seed) is given.")

let no_shrink_flag =
  Arg.(value & flag
       & info [ "no-shrink" ] ~doc:"Skip counterexample shrinking.")

let horizon_arg =
  Arg.(value & opt int 200_000
       & info [ "horizon" ] ~docv:"US"
           ~doc:"Deployment campaign horizon in microseconds.")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Write the report to $(docv) instead of stdout.")

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains"; "j" ] ~docv:"N"
           ~doc:"Fan the per-seed simulations over $(docv) parallel OCaml \
                 domains (default 1 = serial).  Verdicts are merged back \
                 in seed order, so the report is identical to a serial \
                 run.")

let instances_arg =
  Arg.(value & opt int 1
       & info [ "instances" ] ~docv:"N"
           ~doc:"Batch up to $(docv) simulations per domain through the \
                 struct-of-arrays engine (default 1 = looped).  Purely a \
                 throughput knob: verdicts keep seed order and every \
                 report is byte-identical to the looped run.")

let no_prefix_share_flag =
  Arg.(value & flag
       & info [ "no-prefix-share" ]
           ~doc:"Disable checkpointed prefix sharing: by default the \
                 campaign simulates the fault-free prefix shared by the \
                 cases once, snapshots at each divergence tick and \
                 replays only suffixes.  Purely a throughput knob — \
                 every report is byte-identical either way — so this \
                 escape hatch exists for benchmarking and for custom \
                 schedules that consult the fault list before its first \
                 activation.")

(* Validation shared by the campaign/profile commands: seed counts,
   explicit seeds and domain counts must be positive — a zero-seed
   campaign would trivially "pass" its gate, so it is rejected loudly
   instead. *)
let validate_positive what v =
  if v < 1 then begin
    Printf.eprintf "error: %s must be >= 1 (got %d)\n" what v;
    exit 1
  end

let resolve_seeds seeds count =
  validate_positive "--seeds" count;
  List.iter (validate_positive "--seed values") seeds;
  match seeds with
  | [] -> List.init count (fun i -> i + 1)
  | s -> s

(* Reports go through a buffer so --out writes exactly what stdout would
   have shown — the artifact CI uploads is the gate's evidence. *)
let emit out text =
  match out with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Printf.printf "wrote %s\n" path

(* Observability: --metrics/--trace flags shared by the campaign
   commands and the profile command. *)

module Obs = Automode_obs

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write a deterministic metrics CSV to $(docv).")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome-trace JSON (open in chrome://tracing or \
                 Perfetto) to $(docv).")

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* Run [f] under a standard probe sink when any observability output was
   requested.  Returns [f]'s result plus the deterministic metrics
   appendix destined for the report: counters only, never wall-clock
   data, so reports stay byte-identical across reruns. *)
let with_observability ~metrics ~trace_out f =
  if metrics = None && trace_out = None then (f (), None)
  else begin
    let m = Obs.Metrics.create () in
    let span = Option.map (fun _ -> Obs.Span.create ()) trace_out in
    let sink = Obs.Probe.standard ?span m in
    let result = Obs.Probe.with_sink sink f in
    Option.iter (fun p -> write_file p (Obs.Metrics.to_csv m)) metrics;
    (match span, trace_out with
     | Some sp, Some p -> write_file p (Obs.Span.to_chrome_json sp)
     | _ -> ());
    (result, Some ("\nmetrics appendix:\n" ^ Obs.Metrics.to_text m))
  end

let append_appendix text = function
  | None -> text
  | Some appendix -> text ^ appendix

(* Campaign service: --cache-dir routes the campaign commands through
   the content-addressed verdict cache in lib/serve. *)

module Serve = Automode_serve

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Content-addressed verdict cache: per-seed results are \
                 read from and stored under $(docv), so repeated and \
                 overlapping sweeps recompute only uncached seeds.  The \
                 report is byte-identical with or without the cache.")

let make_cache cache_dir =
  Option.map (fun dir -> Serve.Cache.create ~dir ()) cache_dir

let robustness_cmd =
  let run seeds count csv no_shrink engine horizon domains instances
      no_prefix_share out metrics trace_out cache_dir =
    validate_positive "--domains" domains;
    validate_positive "--instances" instances;
    let prefix_share = not no_prefix_share in
    let seeds = resolve_seeds seeds count in
    let cache = make_cache cache_dir in
    (* CI gate: any failing scenario makes the run exit non-zero *)
    if csv && not engine then begin
      (* the CSV rendering needs the campaign record itself *)
      let campaign, _ =
        with_observability ~metrics ~trace_out (fun () ->
            Serve.Catalog.robustness ?cache ~shrink:(not no_shrink) ~domains
              ~instances ~prefix_share ~seeds ())
      in
      emit out (Automode_robust.Report.to_csv campaign);
      if campaign.Automode_robust.Scenario.failures <> [] then exit 1
    end
    else begin
      let outcome, appendix =
        with_observability ~metrics ~trace_out (fun () ->
            Serve.Catalog.run ?cache ~shrink:(not no_shrink) ~domains
              ~instances ~prefix_share ~horizon ~kind:Serve.Job.Robustness
              ~engine ~seeds ())
      in
      emit out (append_appendix outcome.Serve.Catalog.report appendix);
      if not outcome.Serve.Catalog.gate_ok then exit 1
    end
  in
  let csv_flag =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit the report as CSV.")
  in
  let engine_flag =
    Arg.(value & flag
         & info [ "engine" ]
             ~doc:"Run the engine deployment campaign (CAN loss + timing \
                   faults) instead of the door-lock stimulus campaign.")
  in
  Cmd.v
    (Cmd.info "robustness"
       ~doc:
         "Seeded fault-injection campaigns over the case studies \
          (deterministic: the same seeds reproduce the same report)")
    Term.(const run $ seed_list_arg $ seed_count_arg $ csv_flag
          $ no_shrink_flag $ engine_flag $ horizon_arg $ domains_arg
          $ instances_arg $ no_prefix_share_flag $ out_arg $ metrics_arg
          $ trace_out_arg $ cache_dir_arg)

let guard_cmd =
  let run seeds count no_shrink engine horizon domains instances
      no_prefix_share out metrics trace_out cache_dir =
    validate_positive "--domains" domains;
    validate_positive "--instances" instances;
    let prefix_share = not no_prefix_share in
    let seeds = resolve_seeds seeds count in
    let cache = make_cache cache_dir in
    (* only the guarded side gates: the unguarded run is the contrast *)
    let outcome, appendix =
      with_observability ~metrics ~trace_out (fun () ->
          Serve.Catalog.run ?cache ~shrink:(not no_shrink) ~domains ~instances
            ~prefix_share ~horizon ~kind:Serve.Job.Guard ~engine ~seeds ())
    in
    emit out (append_appendix outcome.Serve.Catalog.report appendix);
    if not outcome.Serve.Catalog.gate_ok then exit 1
  in
  let engine_flag =
    Arg.(value & flag
         & info [ "engine" ]
             ~doc:"Compare the engine deployment unguarded vs. guarded (E2E \
                   frame protection + scheduler watchdog) instead of the \
                   door-lock controller.")
  in
  Cmd.v
    (Cmd.info "guard"
       ~doc:
         "Graceful-degradation campaigns: the same faults against the \
          unguarded and the guarded controller (health qualification, \
          limp-home manager, E2E frames, scheduler watchdog); exits \
          non-zero if the guarded side fails")
    Term.(const run $ seed_list_arg $ seed_count_arg $ no_shrink_flag
          $ engine_flag $ horizon_arg $ domains_arg $ instances_arg
          $ no_prefix_share_flag $ out_arg $ metrics_arg $ trace_out_arg
          $ cache_dir_arg)

let redund_cmd =
  let run seeds count no_shrink horizon domains instances no_prefix_share
      out metrics trace_out cache_dir =
    validate_positive "--domains" domains;
    validate_positive "--instances" instances;
    let prefix_share = not no_prefix_share in
    let seeds = resolve_seeds seeds count in
    let cache = make_cache cache_dir in
    (* the protected configurations gate; the simplex and single-channel
       legs are the contrast *)
    let outcome, appendix =
      with_observability ~metrics ~trace_out (fun () ->
          Serve.Catalog.run ?cache ~shrink:(not no_shrink) ~domains ~instances
            ~prefix_share ~horizon ~kind:Serve.Job.Redund ~engine:false
            ~seeds ())
    in
    emit out (append_appendix outcome.Serve.Catalog.report appendix);
    if not outcome.Serve.Catalog.gate_ok then exit 1
  in
  Cmd.v
    (Cmd.info "redund"
       ~doc:
         "Redundancy campaigns: replicated vs. unreplicated engine \
          controller under seeded ECU crashes, replica corruption and \
          channel outages (hot-standby failover, 2oo3 voting, \
          dual-channel TT bus); exits non-zero if a protected \
          configuration fails")
    Term.(const run $ seed_list_arg $ seed_count_arg $ no_shrink_flag
          $ horizon_arg $ domains_arg $ instances_arg $ no_prefix_share_flag
          $ out_arg $ metrics_arg $ trace_out_arg $ cache_dir_arg)

let proptest_cmd =
  let module B = Automode_proptest.Builder in
  let run seeds count no_shrink iterations target domains instances
      no_prefix_share out metrics trace_out cache_dir =
    validate_positive "--domains" domains;
    validate_positive "--instances" instances;
    validate_positive "--iterations" iterations;
    let seeds = resolve_seeds seeds count in
    let shrink = not no_shrink in
    let prefix_share = not no_prefix_share in
    match target with
    | "pair" ->
      (* The paired comparison routes through the serve catalog, so the
         report (and its whole-report cache entry) is byte-identical to
         a daemon-served proptest job with the same parameters. *)
      let cache = make_cache cache_dir in
      let outcome, appendix =
        with_observability ~metrics ~trace_out (fun () ->
            Serve.Catalog.proptest ?cache ~shrink ~domains ~instances
              ~prefix_share ~iterations ~seeds ())
      in
      emit out (append_appendix outcome.Serve.Catalog.report appendix);
      if not outcome.Serve.Catalog.gate_ok then exit 1
    | "unguarded" | "guarded" ->
      (* single-target runs gate on the campaign itself: the unguarded
         door lock is the known-failing target (CI asserts non-zero) *)
      let spec =
        if String.equal target "unguarded" then Propcase.unguarded
        else Propcase.guarded
      in
      let campaign, appendix =
        with_observability ~metrics ~trace_out (fun () ->
            B.run ~shrink ~domains ~instances ~prefix_share
              (B.with_iterations iterations spec)
              ~seeds)
      in
      emit out (append_appendix (B.to_text campaign) appendix);
      if not (B.gate campaign) then exit 1
    | t ->
      Printf.eprintf
        "error: unknown proptest target %s (available: pair, unguarded, \
         guarded)\n"
        t;
      exit 1
  in
  let iterations_arg =
    Arg.(value & opt int 2
         & info [ "iterations"; "i" ] ~docv:"N"
             ~doc:"Generated operation sequences per seed.")
  in
  let target_arg =
    Arg.(value & opt string "pair"
         & info [ "target" ] ~docv:"TARGET"
             ~doc:"What to run and gate on: $(b,pair) (default — both \
                   controllers; passes when the unguarded side fails and \
                   the guarded side is clean), $(b,unguarded) (the \
                   known-failing contrast target; exits non-zero) or \
                   $(b,guarded).")
  in
  Cmd.v
    (Cmd.info "proptest"
       ~doc:
         "Property-testing campaigns over the door-lock case study: each \
          (seed, iteration) expands deterministically into a generated \
          sequence of timed operations (mode commands, sensor silences, \
          implausible spikes, crashes, resets); failures shrink to a \
          minimal operation subsequence that replays bit-for-bit.  \
          Reports are byte-identical across reruns, --domains fan-outs \
          and daemon-served execution")
    Term.(const run $ seed_list_arg $ seed_count_arg $ no_shrink_flag
          $ iterations_arg $ target_arg $ domains_arg $ instances_arg
          $ no_prefix_share_flag $ out_arg $ metrics_arg $ trace_out_arg
          $ cache_dir_arg)

let litmus_cmd =
  let module Synth = Automode_litmus.Synth in
  let module Suite = Automode_litmus.Suite in
  let module B = Automode_proptest.Builder in
  let resolve_engine = function
    | "indexed" -> B.Indexed
    | "interpreted" -> B.Interpreted
    | "compiled" -> B.Compiled
    | e ->
      Printf.eprintf
        "error: unknown engine %s (available: indexed, interpreted, \
         compiled)\n"
        e;
      exit 1
  in
  let run bound max_scenarios engine domains instances no_prefix_share
      replay suite_out out metrics trace_out cache_dir =
    validate_positive "--bound" bound;
    validate_positive "--max-scenarios" max_scenarios;
    validate_positive "--domains" domains;
    validate_positive "--instances" instances;
    let prefix_share = not no_prefix_share in
    let engine = resolve_engine engine in
    match replay with
    | Some path ->
      if not (Sys.file_exists path) then (
        Printf.eprintf "error: suite file %s does not exist\n" path;
        exit 1);
      (match Suite.load path with
       | Error e ->
         Printf.eprintf "error: %s\n" e;
         exit 1
       | Ok suite ->
         let r, appendix =
           with_observability ~metrics ~trace_out (fun () ->
               Litmus_lock.replay ~domains
                 ~model:(Serve.Catalog.litmus_model ()) ~engine suite)
         in
         emit out (append_appendix r.Suite.rep_report appendix);
         if not (Suite.ok r) then exit 1)
    | None ->
      (* Synthesis routes through the serve catalog, so the memoized
         per-scenario classifications (and the report) are shared with
         daemon-served litmus jobs. *)
      let cache = make_cache cache_dir in
      let result, appendix =
        with_observability ~metrics ~trace_out (fun () ->
            Serve.Catalog.litmus_result ?cache ~domains ~instances
              ~prefix_share ~bound ~max_scenarios ~engine ())
      in
      emit out (append_appendix (Synth.to_text result) appendix);
      Option.iter
        (fun path ->
          Suite.write ~path
            (Suite.of_result ~model:(Serve.Catalog.litmus_model ()) result))
        suite_out;
      if not (Synth.gate result) then exit 1
  in
  let bound_arg =
    Arg.(value & opt int 2
         & info [ "bound"; "k" ] ~docv:"K"
             ~doc:"Enumerate every fault scenario combining up to $(docv) \
                   alphabet atoms.")
  in
  let max_scenarios_arg =
    Arg.(value & opt int 100_000
         & info [ "max-scenarios" ] ~docv:"N"
             ~doc:"Safety cap on evaluated scenarios; the report flags \
                   when the enumeration was truncated.")
  in
  let engine_arg =
    Arg.(value & opt string "indexed"
         & info [ "sim" ] ~docv:"ENGINE"
             ~doc:"Simulation engine: $(b,indexed) (default), \
                   $(b,interpreted) or $(b,compiled).  All three yield \
                   byte-identical reports; CI replays the suite under two \
                   of them to pin that.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay a checked-in suite file instead of \
                   synthesizing: re-evaluate every pinned scenario and \
                   exit non-zero if any hash or classification \
                   regressed.")
  in
  let suite_out_arg =
    Arg.(value & opt (some string) None
         & info [ "suite-out" ] ~docv:"FILE"
             ~doc:"Also write the minimal scenarios as a byte-stable \
                   suite file for later $(b,--replay).")
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:
         "Bounded-exhaustive litmus synthesis over the door-lock twin: \
          enumerate every fault scenario up to --bound atoms, \
          deduplicate by trace-divergence hash, classify against the \
          guarded deployment's stated bounds and shrink the survivors to \
          minimal pinned scenarios; exits non-zero unless at least one \
          minimal distinguishing scenario exists and no stated bound is \
          violated.  --replay re-checks a pinned suite and exits \
          non-zero on any regression")
    Term.(const run $ bound_arg $ max_scenarios_arg $ engine_arg
          $ domains_arg $ instances_arg $ no_prefix_share_flag $ replay_arg
          $ suite_out_arg $ out_arg $ metrics_arg $ trace_out_arg
          $ cache_dir_arg)

let profile_cmd =
  (* Target registry: a name, a short description, and the action to run
     under the probe sink.  Trace-producing targets feed the guard/redund
     trace observers so health/voter/failover metrics appear too. *)
  let targets : (string * string * (ticks:int -> unit)) list =
    [ ( "pipeline", "full reengineer/cluster/deploy/codegen pipeline (E3)",
        fun ~ticks:_ -> ignore (Pipeline.run ()) );
      ( "guarded",
        "guarded door-lock controller on the lock stimulus (health flows)",
        fun ~ticks ->
          let trace =
            Sim.run ~ticks ~inputs:Robustness.lock_stimulus Guarded.component
          in
          Automode_guard.Health.observe trace );
      ( "replicated",
        "replicated engine cluster on the drive stimulus (voter/failover)",
        fun ~ticks ->
          let trace =
            Sim.run ~ticks ~inputs:Replicated.repl_stimulus
              Replicated.replicated
          in
          Automode_guard.Health.observe trace;
          Automode_redund.Voter.observe trace;
          Automode_redund.Failover.observe trace ) ]
    @ List.map
        (fun (name, mk) ->
          ( name, "bundled model on its demo stimulus",
            fun ~ticks ->
              let trace = mk ticks in
              Automode_guard.Health.observe trace ))
        bundled_traces
  in
  let run name ticks domains metrics trace_out =
    validate_positive "--domains" domains;
    let _, _, action =
      match
        List.find_opt (fun (n, _, _) -> String.equal n name) targets
      with
      | Some t -> t
      | None ->
        prerr_endline
          ("error: unknown profile target " ^ name ^ " (available: "
          ^ String.concat ", " (List.map (fun (n, _, _) -> n) targets)
          ^ ")");
        exit 1
    in
    let m = Obs.Metrics.create () in
    let span = Obs.Span.create () in
    let prof = Obs.Profile.create () in
    let sink = Obs.Probe.standard ~span ~profile:prof m in
    Obs.Profile.time prof ("profile." ^ name) (fun () ->
        Obs.Probe.with_sink sink (fun () ->
            if domains <= 1 then action ~ticks
            else
              (* stress mode: one run of the target per domain, all
                 feeding the same (mutex-guarded) sink; metrics then
                 aggregate N runs and are only byte-stable at the
                 serial default *)
              ignore
                (Automode_robust.Parallel.map ~domains
                   (fun () -> action ~ticks)
                   (List.init domains (fun _ -> ())))));
    (* deterministic artifacts first, wall-clock summary (stdout only,
       never a byte-compared artifact) last *)
    Option.iter (fun p -> write_file p (Obs.Metrics.to_csv m)) metrics;
    Option.iter (fun p -> write_file p (Obs.Span.to_chrome_json span)) trace_out;
    print_string (Obs.Metrics.to_text m);
    print_newline ();
    print_string (Obs.Profile.summary prof)
  in
  let target_arg =
    let doc =
      "Profile target: pipeline, guarded, replicated, or a bundled model ("
      ^ String.concat ", " model_names ^ ")."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET" ~doc)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a case study under full instrumentation: deterministic \
          metrics (--metrics CSV, byte-identical across runs), \
          Chrome-trace spans (--trace JSON), and a wall-clock \
          per-component summary on stdout")
    Term.(const run $ target_arg $ ticks_arg 200 $ domains_arg
          $ metrics_arg $ trace_out_arg)

let serve_cmd =
  let run spool results cache_dir workers domains once poll_ms max_jobs
      socket reclaim_s metrics =
    validate_positive "--workers" workers;
    validate_positive "--domains" domains;
    validate_positive "--poll-ms" poll_ms;
    Option.iter (validate_positive "--max-jobs") max_jobs;
    Option.iter
      (fun s ->
        if s <= 0. then (
          Printf.eprintf "error: --reclaim-s must be positive (got %g)\n" s;
          exit 1))
      reclaim_s;
    let cache = make_cache cache_dir in
    let m = Option.map (fun _ -> Obs.Metrics.create ()) metrics in
    let config =
      { Serve.Daemon.spool;
        results =
          (match results with
           | Some r -> r
           | None -> Filename.concat spool "results");
        cache; workers; domains;
        poll_s = float_of_int poll_ms /. 1000.;
        once; max_jobs; socket; reclaim_s }
    in
    let summary = Serve.Daemon.run ?metrics:m config in
    (match (metrics, m) with
     | Some path, Some m -> write_file path (Obs.Metrics.to_csv m)
     | _ -> ());
    Printf.printf "serve: accepted %d, completed %d, failed %d\n"
      summary.Serve.Daemon.accepted summary.Serve.Daemon.completed
      summary.Serve.Daemon.failed;
    if summary.Serve.Daemon.failed > 0 then exit 1
  in
  let spool_arg =
    Arg.(required & opt (some string) None
         & info [ "spool" ] ~docv:"DIR"
             ~doc:"Job inbox: $(docv)/*.json files of newline-delimited \
                   JSON campaign jobs.  Claimed files move to \
                   $(docv)/running and end in $(docv)/done or \
                   $(docv)/failed; a $(docv)/stop file shuts the daemon \
                   down.")
  in
  let results_arg =
    Arg.(value & opt (some string) None
         & info [ "results" ] ~docv:"DIR"
             ~doc:"Where per-job report and status files go (default: \
                   $(b,--spool)/results).")
  in
  let workers_arg =
    Arg.(value & opt int 1
         & info [ "workers" ] ~docv:"N"
             ~doc:"Concurrent jobs per batch (OCaml domains).")
  in
  let once_flag =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Drain the spool, then exit instead of polling.")
  in
  let poll_ms_arg =
    Arg.(value & opt int 500
         & info [ "poll-ms" ] ~docv:"MS"
             ~doc:"Idle sleep between spool scans, in milliseconds.")
  in
  let max_jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "max-jobs" ] ~docv:"N"
             ~doc:"Exit after $(docv) jobs have finished.")
  in
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Also accept jobs on a Unix-domain socket at $(docv): \
                   each connection sends newline-delimited jobs and gets \
                   one $(b,queued)/$(b,error) line back per job.")
  in
  let reclaim_arg =
    Arg.(value & opt (some float) None
         & info [ "reclaim-s" ] ~docv:"SECONDS"
             ~doc:"Stale-claim timeout: spool files claimed into \
                   running/ but not finished within $(docv) seconds \
                   (their worker crashed) are put back into the spool \
                   and re-run.  Set it above the worst-case job latency; \
                   omitted, orphaned claims wait for an operator.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Campaign-as-a-service: a job-queue daemon running robustness, \
          guard and redundancy campaigns from a file spool (and \
          optionally a Unix socket), with per-seed verdicts served from \
          the content-addressed cache.  Job reports are byte-identical \
          to the matching one-shot subcommand run")
    Term.(const run $ spool_arg $ results_arg $ cache_dir_arg $ workers_arg
          $ domains_arg $ once_flag $ poll_ms_arg $ max_jobs_arg
          $ socket_arg $ reclaim_arg $ metrics_arg)

let pipeline_cmd =
  let run () =
    let r = Pipeline.run () in
    Format.printf "%a" Pipeline.pp_summary r
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:"Run the full reengineer/cluster/deploy/codegen pipeline (Fig. 3)")
    Term.(const run $ const ())

let () =
  let default =
    Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))
  in
  let info =
    Cmd.info "automode" ~version:"1.0.0"
      ~doc:"Model-based development of automotive software (AutoMoDe, DATE'05)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ simulate_cmd; render_cmd; causality_cmd; rules_cmd; check_cmd;
            reengineer_cmd; deploy_cmd; codegen_cmd; save_cmd;
            check_model_cmd; timeline_cmd; robustness_cmd; guard_cmd;
            redund_cmd; proptest_cmd; litmus_cmd; serve_cmd; profile_cmd;
            pipeline_cmd ]))
